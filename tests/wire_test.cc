// Tests for the wire encoding (src/core/wire.*): varint primitives,
// exact size accounting, round trips for every message kind, and decode
// robustness against corrupt input.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/wire.h"

namespace lazyrep::core {
namespace {

TEST(VarintTest, RoundTripsBoundaryValues) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                     0xFFFFFFFFull, ~0ull}) {
    std::vector<uint8_t> buf;
    Wire::PutVarint(&buf, v);
    EXPECT_EQ(buf.size(), Wire::VarintSize(v));
    size_t pos = 0;
    Result<uint64_t> back = Wire::GetVarint(buf, &pos);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, SignedZigZag) {
  for (int64_t v :
       std::initializer_list<int64_t>{0, 1, -1, 63, -64, 1ll << 40,
                                      -(1ll << 40), INT64_MAX, INT64_MIN}) {
    std::vector<uint8_t> buf;
    Wire::PutSigned(&buf, v);
    EXPECT_EQ(buf.size(), Wire::SignedSize(v));
    size_t pos = 0;
    Result<int64_t> back = Wire::GetSigned(buf, &pos);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
}

TEST(VarintTest, SmallNegativesStaySmall) {
  // Zig-zag keeps -1 at one byte (plain two's complement would take 10).
  std::vector<uint8_t> buf;
  Wire::PutSigned(&buf, -1);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(VarintTest, TruncatedInputFails) {
  std::vector<uint8_t> buf{0x80, 0x80};  // Continuation with no end.
  size_t pos = 0;
  EXPECT_FALSE(Wire::GetVarint(buf, &pos).ok());
}

SecondaryUpdate SampleUpdate() {
  SecondaryUpdate u;
  u.origin = {3, 12345};
  u.origin_site = 3;
  u.origin_commit_time = Millis(123.456);
  u.writes = {{7, 111}, {42, -5}, {199, 1ll << 50}};
  u.ts = Timestamp::Initial(0).ExtendedWith(2, 9, 4).ExtendedWith(5, 1, 4);
  return u;
}

void ExpectRoundTrip(const ProtocolMessage& message) {
  std::vector<uint8_t> bytes = Wire::Encode(message);
  EXPECT_EQ(bytes.size(), Wire::EncodedSize(message));
  Result<ProtocolMessage> back = Wire::Decode(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->index(), message.index());
  // Compare via re-encoding (messages have no operator==).
  EXPECT_EQ(Wire::Encode(*back), bytes);
}

TEST(WireTest, SecondaryUpdateRoundTrip) {
  ExpectRoundTrip(ProtocolMessage(SampleUpdate()));
  SecondaryUpdate dummy;
  dummy.is_dummy = true;
  dummy.ts = Timestamp::Initial(4);
  dummy.ts.set_epoch(17);
  ExpectRoundTrip(ProtocolMessage(dummy));
  SecondaryUpdate special = SampleUpdate();
  special.is_special = true;
  ExpectRoundTrip(ProtocolMessage(special));
}

TEST(WireTest, SecondaryUpdateFieldsSurviveExactly) {
  SecondaryUpdate u = SampleUpdate();
  Result<ProtocolMessage> back = Wire::Decode(Wire::Encode(u));
  ASSERT_TRUE(back.ok());
  const auto& d = std::get<SecondaryUpdate>(*back);
  EXPECT_EQ(d.origin, u.origin);
  EXPECT_EQ(d.origin_site, u.origin_site);
  EXPECT_EQ(d.origin_commit_time, u.origin_commit_time);
  ASSERT_EQ(d.writes.size(), 3u);
  EXPECT_EQ(d.writes[2].item, 199);
  EXPECT_EQ(d.writes[2].value, 1ll << 50);
  EXPECT_EQ(Timestamp::Compare(d.ts, u.ts), 0);
  EXPECT_EQ(d.ts.epoch(), 4);
}

TEST(WireTest, AllKindsRoundTrip) {
  BackedgeStart start;
  start.origin = {1, 2};
  start.origin_site = 1;
  start.primary_done_time = Millis(9);
  start.writes = {{3, 4}};
  ExpectRoundTrip(ProtocolMessage(start));
  ExpectRoundTrip(ProtocolMessage(BackedgeAbort{{2, 7}}));
  TpcPrepare prepare;
  prepare.origin = {0, 9};
  prepare.coordinator = 0;
  prepare.carries_writes = true;
  prepare.writes = {{1, 2}, {3, 4}};
  ExpectRoundTrip(ProtocolMessage(prepare));
  TpcVote vote;
  vote.origin = {4, 4};
  vote.yes = true;
  ExpectRoundTrip(ProtocolMessage(vote));
  TpcDecision decision;
  decision.origin = {4, 4};
  decision.commit = true;
  decision.origin_commit_time = Millis(1);
  ExpectRoundTrip(ProtocolMessage(decision));
  ExpectRoundTrip(ProtocolMessage(TpcAck{{4, 4}}));
  PslLockRequest request;
  request.origin = {5, 6};
  request.item = 77;
  request.request_id = 1234567;
  ExpectRoundTrip(ProtocolMessage(request));
  PslLockResponse response;
  response.origin = {5, 6};
  response.item = 77;
  response.request_id = 1234567;
  response.granted = true;
  response.value = -99;
  ExpectRoundTrip(ProtocolMessage(response));
  PslRelease release;
  release.origin = {5, 6};
  release.committed = true;
  ExpectRoundTrip(ProtocolMessage(release));
  ReliableData data;
  data.seq = 9001;
  data.piggyback_ack = 17;
  data.inner = Wire::Encode(ProtocolMessage(SampleUpdate()));
  ExpectRoundTrip(ProtocolMessage(data));
  ReliableBatch batch;
  batch.seq = 9002;
  batch.piggyback_ack = 0;
  batch.count = 2;
  for (int i = 0; i < 2; ++i) {
    std::vector<uint8_t> record = Wire::Encode(ProtocolMessage(SampleUpdate()));
    Wire::PutVarint(&batch.inner, record.size());
    batch.inner.insert(batch.inner.end(), record.begin(), record.end());
  }
  ExpectRoundTrip(ProtocolMessage(batch));
}

TEST(WireTest, ReliableBatchFieldsSurviveExactly) {
  // count must be plausible against the inner size (a record is at
  // least [len][tag] = 2 bytes) or the hostile-count guard rejects it.
  ReliableBatch batch;
  batch.seq = 123456789;
  batch.piggyback_ack = 42;
  batch.count = 2;
  batch.inner = {9, 8, 7, 6, 5};
  Result<ProtocolMessage> back = Wire::Decode(Wire::Encode(batch));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const auto& d = std::get<ReliableBatch>(*back);
  EXPECT_EQ(d.seq, 123456789u);
  EXPECT_EQ(d.piggyback_ack, 42u);
  EXPECT_EQ(d.count, 2u);
  EXPECT_EQ(d.inner, batch.inner);
}

TEST(WireTest, SizesAreCompact) {
  // An empty-ish control message stays tiny; a 3-write update is small.
  EXPECT_LE(Wire::EncodedSize(ProtocolMessage(TpcAck{{0, 1}})), 4u);
  EXPECT_LE(Wire::EncodedSize(ProtocolMessage(SampleUpdate())), 64u);
}

TEST(WireTest, EncodeToAppendsWithoutClearing) {
  // The allocation-free path: EncodeTo appends to whatever is already
  // in the buffer (ReliableTransport reuses a per-channel scratch this
  // way) and produces exactly the bytes Encode would.
  ProtocolMessage m(SampleUpdate());
  std::vector<uint8_t> direct = Wire::Encode(m);
  EXPECT_EQ(direct.size(), Wire::EncodedSize(m));
  std::vector<uint8_t> buf = {0xAB, 0xCD};
  Wire::EncodeTo(m, &buf);
  ASSERT_EQ(buf.size(), direct.size() + 2);
  EXPECT_EQ(buf[0], 0xAB);
  EXPECT_EQ(buf[1], 0xCD);
  EXPECT_EQ(std::vector<uint8_t>(buf.begin() + 2, buf.end()), direct);
  // Reused scratch: clear + re-encode matches a fresh encoding.
  buf.clear();
  Wire::EncodeTo(m, &buf);
  EXPECT_EQ(buf, direct);
}

TEST(WireDecodeTest, RejectsGarbage) {
  EXPECT_FALSE(Wire::Decode({}).ok());
  EXPECT_FALSE(Wire::Decode({0xFF}).ok());        // Unknown tag.
  EXPECT_FALSE(Wire::Decode({0x00}).ok());        // Truncated body.
  EXPECT_FALSE(Wire::Decode({0x06, 0x02}).ok());  // Truncated txn id.
}

TEST(WireDecodeTest, RejectsTrailingBytes) {
  std::vector<uint8_t> bytes = Wire::Encode(ProtocolMessage(TpcAck{{0, 1}}));
  bytes.push_back(0x00);
  EXPECT_FALSE(Wire::Decode(bytes).ok());
}

TEST(WireDecodeTest, TruncationFuzz) {
  // Every strict prefix of a valid encoding must fail to decode (never
  // crash, never succeed).
  std::vector<uint8_t> bytes = Wire::Encode(ProtocolMessage(SampleUpdate()));
  for (size_t n = 0; n < bytes.size(); ++n) {
    std::vector<uint8_t> prefix(bytes.begin(),
                                bytes.begin() + static_cast<long>(n));
    EXPECT_FALSE(Wire::Decode(prefix).ok()) << "prefix length " << n;
  }
}

TEST(WireDecodeTest, RejectsOversizedCounts) {
  // A hostile length prefix is rejected up front (no element can be
  // smaller than its minimum wire size, so a count exceeding
  // remaining/min_size is provably bad) — decode must fail without
  // attempting a huge reserve. Each case hand-builds a valid prefix and
  // then lies in the count field.
  {
    // SecondaryUpdate (tag 0) claiming 2^40 timestamp tuples.
    std::vector<uint8_t> bytes = {0x00};
    Wire::PutSigned(&bytes, 1);        // origin.origin_site
    Wire::PutSigned(&bytes, 2);        // origin.seq
    Wire::PutSigned(&bytes, 1);        // origin_site
    Wire::PutSigned(&bytes, 0);        // origin_commit_time
    bytes.push_back(0x00);             // flags
    Wire::PutSigned(&bytes, 0);        // ts epoch
    Wire::PutVarint(&bytes, 1ull << 40);  // ts tuple count: absurd
    EXPECT_FALSE(Wire::Decode(bytes).ok());
  }
  {
    // SecondaryUpdate with a valid (empty) timestamp but an absurd
    // write count.
    std::vector<uint8_t> bytes = {0x00};
    Wire::PutSigned(&bytes, 1);
    Wire::PutSigned(&bytes, 2);
    Wire::PutSigned(&bytes, 1);
    Wire::PutSigned(&bytes, 0);
    bytes.push_back(0x00);
    Wire::PutSigned(&bytes, 0);        // ts epoch
    Wire::PutVarint(&bytes, 0);        // ts tuple count
    Wire::PutVarint(&bytes, 1ull << 40);  // write count: absurd
    EXPECT_FALSE(Wire::Decode(bytes).ok());
  }
  {
    // SecondaryBatch (tag 10) claiming 2^40 inner updates.
    std::vector<uint8_t> bytes = {0x0A};
    Wire::PutVarint(&bytes, 1ull << 40);
    EXPECT_FALSE(Wire::Decode(bytes).ok());
  }
  {
    // ReliableData (tag 11) whose inner length exceeds the remaining
    // bytes by one — the bulk copy must not read past the buffer.
    std::vector<uint8_t> bytes = {0x0B};
    Wire::PutVarint(&bytes, 42);       // seq
    Wire::PutVarint(&bytes, 7);        // piggyback_ack
    Wire::PutVarint(&bytes, 5);        // inner length...
    bytes.insert(bytes.end(), {1, 2, 3, 4});  // ...but only 4 bytes.
    EXPECT_FALSE(Wire::Decode(bytes).ok());
    bytes.push_back(5);  // Now exactly 5: must decode.
    Result<ProtocolMessage> ok = Wire::Decode(bytes);
    ASSERT_TRUE(ok.ok());
    const auto& rd = std::get<ReliableData>(*ok);
    EXPECT_EQ(rd.seq, 42u);
    EXPECT_EQ(rd.piggyback_ack, 7u);
    EXPECT_EQ(rd.inner, (std::vector<uint8_t>{1, 2, 3, 4, 5}));
  }
  {
    // ReliableData with a 2^50 length prefix: rejected before any
    // allocation.
    std::vector<uint8_t> bytes = {0x0B};
    Wire::PutVarint(&bytes, 0);        // seq
    Wire::PutVarint(&bytes, 0);        // piggyback_ack
    Wire::PutVarint(&bytes, 1ull << 50);
    EXPECT_FALSE(Wire::Decode(bytes).ok());
  }
  {
    // ReliableBatch (tag 13) claiming 2^40 inner messages.
    std::vector<uint8_t> bytes = {0x0D};
    Wire::PutVarint(&bytes, 1);        // seq
    Wire::PutVarint(&bytes, 0);        // piggyback_ack
    Wire::PutVarint(&bytes, 1ull << 40);  // count: absurd
    Wire::PutVarint(&bytes, 0);        // inner length
    EXPECT_FALSE(Wire::Decode(bytes).ok());
  }
  {
    // ReliableBatch whose inner length runs past the buffer.
    std::vector<uint8_t> bytes = {0x0D};
    Wire::PutVarint(&bytes, 1);        // seq
    Wire::PutVarint(&bytes, 0);        // piggyback_ack
    Wire::PutVarint(&bytes, 2);        // count
    Wire::PutVarint(&bytes, 1ull << 50);  // inner length: absurd
    EXPECT_FALSE(Wire::Decode(bytes).ok());
  }
}

TEST(WireDecodeTest, RandomByteFuzz) {
  // Random byte strings never crash the decoder.
  Rng rng(321);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> bytes(rng.Below(40));
    for (uint8_t& b : bytes) b = static_cast<uint8_t>(rng.Below(256));
    if (!bytes.empty()) bytes[0] = static_cast<uint8_t>(rng.Below(14));
    (void)Wire::Decode(bytes);  // Must not crash or CHECK.
  }
}

TEST(WireDecodeTest, MutationFuzzRoundTrips) {
  // Mutate single bytes of valid encodings: decode either fails or
  // produces a message that re-encodes cleanly (no internal corruption).
  Rng rng(654);
  std::vector<uint8_t> base = Wire::Encode(ProtocolMessage(SampleUpdate()));
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> bytes = base;
    bytes[rng.Below(bytes.size())] ^=
        static_cast<uint8_t>(1u << rng.Below(8));
    Result<ProtocolMessage> decoded = Wire::Decode(bytes);
    if (decoded.ok()) {
      std::vector<uint8_t> re = Wire::Encode(*decoded);
      EXPECT_FALSE(re.empty());
    }
  }
}

}  // namespace
}  // namespace lazyrep::core
