// Paper-scale integration runs: the full Table 1 topology (9 sites on 3
// machines, 200 items) with a trimmed transaction count, one run per
// protocol, all invariants checked. These are the closest tests to the
// benchmark configurations.

#include <gtest/gtest.h>

#include "core/system.h"
#include "harness/experiment.h"

namespace lazyrep::core {
namespace {

class PaperScale : public ::testing::TestWithParam<Protocol> {};

TEST_P(PaperScale, TableOneTopologyUpholdsAllInvariants) {
  Protocol protocol = GetParam();
  SystemConfig config = harness::PaperConfig(protocol);
  config.workload.txns_per_thread = 100;
  if (protocol == Protocol::kDagWt || protocol == Protocol::kDagT) {
    config.workload.backedge_prob = 0.0;  // DAG protocols need a DAG.
  }
  config.seed = 2024;
  auto system = System::Create(std::move(config));
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  System& sys = **system;
  RunMetrics metrics = sys.Run();

  EXPECT_FALSE(metrics.timed_out);
  EXPECT_EQ(metrics.committed + metrics.aborted, 9 * 3 * 100);
  EXPECT_TRUE(metrics.serializable) << metrics.verdict;
  EXPECT_TRUE(metrics.reads_consistent) << metrics.verdict;
  EXPECT_TRUE(metrics.converged);
  EXPECT_GT(metrics.avg_site_throughput, 0.0);
  EXPECT_GT(metrics.reads_checked, 1000u);
  // Work actually flowed over the simulated network for every
  // replication protocol (kEager/kBackEdge/etc. all message).
  EXPECT_GT(metrics.messages, 0u);
  EXPECT_GT(metrics.bytes, metrics.messages);  // >1 byte per message.
  // Every engine drained.
  for (SiteId s = 0; s < 9; ++s) {
    EXPECT_TRUE(sys.engine(s).Quiescent()) << "site " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, PaperScale,
    ::testing::Values(Protocol::kDagWt, Protocol::kDagT,
                      Protocol::kBackEdge, Protocol::kPsl,
                      Protocol::kEager),
    [](const auto& info) {
      std::string name = ProtocolName(info.param);
      std::erase_if(name, [](char c) { return !std::isalnum(c); });
      return name;
    });

TEST(PaperScaleExtras, BatchedDagWtAtScale) {
  SystemConfig config = harness::PaperConfig(Protocol::kDagWt);
  config.workload.txns_per_thread = 100;
  config.workload.backedge_prob = 0.0;
  config.engine.batch_window = Millis(10);
  auto system = System::Create(std::move(config));
  ASSERT_TRUE(system.ok());
  RunMetrics metrics = (*system)->Run();
  EXPECT_TRUE(metrics.serializable) << metrics.verdict;
  EXPECT_TRUE(metrics.reads_consistent);
  EXPECT_TRUE(metrics.converged);
}

TEST(PaperScaleExtras, SkewedBackEdgeAtScale) {
  SystemConfig config = harness::PaperConfig(Protocol::kBackEdge);
  config.workload.txns_per_thread = 100;
  config.workload.zipf_theta = 1.0;
  auto system = System::Create(std::move(config));
  ASSERT_TRUE(system.ok());
  RunMetrics metrics = (*system)->Run();
  EXPECT_TRUE(metrics.serializable) << metrics.verdict;
  EXPECT_TRUE(metrics.reads_consistent);
  EXPECT_TRUE(metrics.converged);
}

TEST(PaperScaleExtras, FifteenSites) {
  SystemConfig config = harness::PaperConfig(Protocol::kBackEdge);
  config.workload.txns_per_thread = 60;
  config.workload.num_sites = 15;  // Table 1's upper bound.
  auto system = System::Create(std::move(config));
  ASSERT_TRUE(system.ok());
  RunMetrics metrics = (*system)->Run();
  EXPECT_TRUE(metrics.serializable) << metrics.verdict;
  EXPECT_TRUE(metrics.converged);
  EXPECT_EQ(metrics.per_site.size(), 15u);
}

}  // namespace
}  // namespace lazyrep::core
