// Pinned regressions for concurrency bugs found by schedule exploration
// and the chaos tier (docs/CHECKING.md). Each test is the minimal
// distillation of a real failure; if one starts failing, the bug it
// pins has been reintroduced.
//
// Regression 1 — ChaosThreads stack overflow. Symmetric transfer is
// only a guaranteed tail call under optimization; in TSan/ASan debug
// builds (-O0) every transfer nests a native stack frame. The DAG(T)
// threads-runtime chaos test crashed with a stack overflow when an
// applier drained a long backlog of synchronously-completing awaits in
// one unbroken transfer chain. The fix is the resume trampoline in
// sim/co.h (BoundTransfer/BoundedResume): past kMaxTransferDepth
// transfers per executor entry, the next handle is parked on a FIFO
// queue and resumed from a flat stack. The tests below run transfer
// chains two orders of magnitude deeper than the budget — they
// overflow within seconds if the trampoline is removed, and pass in
// optimized builds either way (which is exactly why the chaos CI jobs
// run them under sanitizers, unfiltered).

#include <cstdint>

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace lazyrep::sim {
namespace {

Co<int64_t> One() { co_return 1; }

// A long loop of awaits on synchronously-completing children: every
// iteration is two transfers (into the child, back to the parent) with
// no event-loop return in between — the shape of an applier draining a
// backlog. 200k iterations ≈ 400k chained transfers, far beyond any
// real stack if each nests a frame.
TEST(ScheduleRegressionTest, DeepSynchronousAwaitChainDoesNotOverflow) {
  constexpr int64_t kChainLength = 200000;
  Simulator sim;
  int64_t sum = 0;
  sim.Spawn([](int64_t n, int64_t* out) -> Co<void> {
    for (int64_t i = 0; i < n; ++i) *out += co_await One();
  }(kChainLength, &sum));
  sim.Run();
  // Every child ran exactly once — parking a handle on the trampoline's
  // deferred queue delays it past the frame unwind but never drops it.
  EXPECT_EQ(sum, kChainLength);
  EXPECT_EQ(sim.live_process_count(), 0u);
}

Co<int64_t> Nested(int64_t depth) {
  if (depth == 0) co_return 0;
  co_return 1 + co_await Nested(depth - 1);
}

// The completion-cascade variant: 50k recursively nested awaits finish
// in one cascade of final-suspend transfers from the innermost frame
// outward. Coroutine frames live on the heap, so only the transfer
// chain itself touches the native stack — unbounded before the
// trampoline, O(kMaxTransferDepth) after.
TEST(ScheduleRegressionTest, DeepCompletionCascadeDoesNotOverflow) {
  constexpr int64_t kDepth = 50000;
  Simulator sim;
  int64_t measured = -1;
  sim.Spawn([](int64_t depth, int64_t* out) -> Co<void> {
    *out = co_await Nested(depth);
  }(kDepth, &measured));
  sim.Run();
  EXPECT_EQ(measured, kDepth);
  EXPECT_EQ(sim.live_process_count(), 0u);
}

// The trampoline must not reorder anything observable: two processes
// alternating timed events around deep synchronous chains complete in
// the exact order the untrampolined semantics dictate.
TEST(ScheduleRegressionTest, TrampolinePreservesEventOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int id = 0; id < 2; ++id) {
    sim.Spawn([](Simulator* s, std::vector<int>* log, int tag) -> Co<void> {
      for (int step = 0; step < 3; ++step) {
        int64_t burn = 0;
        for (int i = 0; i < 1000; ++i) burn += co_await One();
        (void)burn;
        co_await s->Delay(Micros(10));
        log->push_back(tag * 10 + step);
      }
    }(&sim, &order, id));
  }
  sim.Run();
  // Same virtual timestamps, FIFO event order: process 0's step runs
  // before process 1's at every round.
  EXPECT_EQ(order, (std::vector<int>{0, 10, 1, 11, 2, 12}));
}

}  // namespace
}  // namespace lazyrep::sim
