// Tests for the schedule-exploration checker (docs/CHECKING.md):
//
//  * The invariant oracle actually rejects — hand-built non-serializable
//    histories (write skew, lost update, G1c write cycle) and stale
//    reads must fail their checkers. A checker that accepts everything
//    would make every lazychk sweep vacuously "clean".
//  * Perturbed schedules really differ from the default, and replaying
//    the same (seed, policy) pair is byte-for-bit identical — the
//    property every lazychk violation report relies on.
//  * A present-but-disabled policy leaves the schedule bit-identical to
//    a policy-free run (the determinism contract of SystemConfig::
//    schedule).
//  * Small clean sweeps, plus an opt-in fuzz tier sized by the
//    LAZYREP_FUZZ_BUDGET environment variable (CI's schedule-fuzz job).

#include <cstdlib>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/history.h"
#include "core/system.h"
#include "harness/lazychk.h"
#include "obs/prometheus.h"

namespace lazyrep {
namespace {

using core::HistoryRecorder;
using core::Protocol;

// ---------------------------------------------------------------------
// Oracle validation: hand-built anomalies must be rejected.
//
// Each site's commit order is a serialization order of that site's
// schedule (strict 2PL), so a single-site history can never be
// non-serializable by construction — every anomaly below needs two or
// more sites whose local orders disagree about the same transactions.

HistoryRecorder::Record MakeRecord(SiteId site, SiteId origin_site,
                                   int64_t origin_seq, int64_t commit_seq,
                                   std::set<ItemId> reads,
                                   std::set<ItemId> writes) {
  HistoryRecorder::Record record;
  record.site = site;
  record.origin = GlobalTxnId{origin_site, origin_seq};
  record.commit_seq = commit_seq;
  record.reads = std::move(reads);
  record.writes = std::move(writes);
  return record;
}

// Write skew: A reads x and writes y, B reads y and writes x. Site 0
// commits A before B (read-write edge A->B on x); site 1 commits B
// before A (read-write edge B->A on y). The union has a cycle even
// though each local schedule is serial.
TEST(ScheduleOracleTest, RejectsWriteSkew) {
  HistoryRecorder history;
  constexpr ItemId x = 1, y = 2;
  history.AddRecord(MakeRecord(0, 0, 1, /*commit_seq=*/1, {x}, {y}));  // A
  history.AddRecord(MakeRecord(0, 1, 1, /*commit_seq=*/2, {y}, {x}));  // B
  history.AddRecord(MakeRecord(1, 1, 1, /*commit_seq=*/1, {y}, {x}));  // B
  history.AddRecord(MakeRecord(1, 0, 1, /*commit_seq=*/2, {x}, {y}));  // A
  core::SerializabilityVerdict verdict = core::CheckSerializability(history);
  EXPECT_FALSE(verdict.serializable);
  EXPECT_FALSE(verdict.cycle.empty());
}

// Lost update: A and B both read-modify-write x, but the two replicas
// apply them in opposite orders — each site's final value reflects a
// different "last" writer, and the conflict graph has A<->B edges both
// ways.
TEST(ScheduleOracleTest, RejectsLostUpdate) {
  HistoryRecorder history;
  constexpr ItemId x = 7;
  history.AddRecord(MakeRecord(0, 0, 1, 1, {x}, {x}));  // A then B at site 0.
  history.AddRecord(MakeRecord(0, 1, 1, 2, {x}, {x}));
  history.AddRecord(MakeRecord(1, 1, 1, 1, {x}, {x}));  // B then A at site 1.
  history.AddRecord(MakeRecord(1, 0, 1, 2, {x}, {x}));
  core::SerializabilityVerdict verdict = core::CheckSerializability(history);
  EXPECT_FALSE(verdict.serializable);
}

// G1c: a pure write-write cycle A->B->C->A spread over three sites.
// No transaction reads anything, so only install order is at fault —
// the anomaly the value-level read checker can never see.
TEST(ScheduleOracleTest, RejectsG1cWriteCycle) {
  HistoryRecorder history;
  constexpr ItemId x = 1, y = 2, z = 3;
  // Site 0: A writes x, then B writes x  => A -> B.
  history.AddRecord(MakeRecord(0, 0, 1, 1, {}, {x}));
  history.AddRecord(MakeRecord(0, 1, 1, 2, {}, {x, y}));
  // Site 1: B writes y, then C writes y  => B -> C.
  history.AddRecord(MakeRecord(1, 1, 1, 1, {}, {y}));
  history.AddRecord(MakeRecord(1, 2, 1, 2, {}, {y, z}));
  // Site 2: C writes z, then A writes z  => C -> A.
  history.AddRecord(MakeRecord(2, 2, 1, 1, {}, {z}));
  history.AddRecord(MakeRecord(2, 0, 1, 2, {}, {z, x}));
  core::SerializabilityVerdict verdict = core::CheckSerializability(history);
  EXPECT_FALSE(verdict.serializable);
  EXPECT_GE(verdict.cycle.size(), 3u);
}

// Control: the same write-skew transactions committed in the SAME order
// at both sites are serializable — the checker rejects the cycle, not
// the workload.
TEST(ScheduleOracleTest, AcceptsConsistentOrder) {
  HistoryRecorder history;
  constexpr ItemId x = 1, y = 2;
  history.AddRecord(MakeRecord(0, 0, 1, 1, {x}, {y}));
  history.AddRecord(MakeRecord(0, 1, 1, 2, {y}, {x}));
  history.AddRecord(MakeRecord(1, 0, 1, 1, {x}, {y}));
  history.AddRecord(MakeRecord(1, 1, 1, 2, {y}, {x}));
  core::SerializabilityVerdict verdict = core::CheckSerializability(history);
  EXPECT_TRUE(verdict.serializable) << verdict.ToString();
}

// Value-level oracle: a first read must observe the last committed
// writer's value (initially 0). A record claiming it read 5 from an
// untouched item is an isolation/undo bug.
TEST(ScheduleOracleTest, RejectsStaleReadValue) {
  HistoryRecorder history;
  constexpr ItemId x = 4;
  HistoryRecorder::Record record = MakeRecord(0, 0, 1, 1, {x}, {});
  record.reads_observed[x] = 5;
  history.AddRecord(record);
  core::ReadConsistencyVerdict verdict = core::CheckReadConsistency(history);
  EXPECT_FALSE(verdict.consistent);
  EXPECT_FALSE(verdict.violation.empty());
}

// ---------------------------------------------------------------------
// Replay determinism and the disabled-policy contract.

struct RunOutput {
  std::string metrics_text;  // Prometheus snapshot — the byte-level view.
  int64_t committed = 0;
  uint64_t messages = 0;
  bool serializable = false;
};

RunOutput RunOnce(const core::SystemConfig& config) {
  Result<std::unique_ptr<core::System>> system = core::System::Create(config);
  EXPECT_TRUE(system.ok()) << system.status().ToString();
  core::RunMetrics m = (*system)->Run();
  RunOutput out;
  out.metrics_text = obs::PrometheusText((*system)->obs_registry());
  out.committed = m.committed;
  out.messages = m.messages;
  out.serializable = m.serializable;
  return out;
}

harness::LazychkOptions SmallOptions(Protocol protocol) {
  harness::LazychkOptions options;
  options.protocol = protocol;
  options.txns_per_thread = 20;
  options.shrink = false;
  return options;
}

// The same (seed, policy) pair twice gives a byte-identical metrics
// snapshot — the property that makes every violation report replayable.
TEST(ScheduleReplayTest, SamePolicySameSeedIsByteIdentical) {
  harness::LazychkOptions options = SmallOptions(Protocol::kDagT);
  core::SystemConfig config =
      harness::LazychkConfig(options, /*seed=*/11, options.policy);
  RunOutput first = RunOnce(config);
  RunOutput second = RunOnce(config);
  EXPECT_GT(first.committed, 0);
  EXPECT_TRUE(first.serializable);
  EXPECT_EQ(first.committed, second.committed);
  EXPECT_EQ(first.messages, second.messages);
  EXPECT_EQ(first.metrics_text, second.metrics_text);
}

// An enabled policy must actually perturb: with tie-breaks, jitter and
// grant shuffling all on, the schedule (and hence the lock/wait counters
// in the snapshot) diverges from the default run of the same seed.
TEST(ScheduleReplayTest, EnabledPolicyPerturbsTheSchedule) {
  harness::LazychkOptions options = SmallOptions(Protocol::kDagT);
  core::SystemConfig perturbed =
      harness::LazychkConfig(options, /*seed=*/11, options.policy);
  core::SystemConfig baseline = perturbed;
  baseline.schedule.reset();
  RunOutput a = RunOnce(baseline);
  RunOutput b = RunOnce(perturbed);
  EXPECT_TRUE(a.serializable);
  EXPECT_TRUE(b.serializable);
  EXPECT_NE(a.metrics_text, b.metrics_text);
}

// A present-but-all-off policy leaves the run bit-identical to one with
// no policy at all: the tie-break field stays 0, no jitter hook is
// installed and the grant scan stays deterministic. This is what keeps
// the goldens valid without recapture.
TEST(ScheduleReplayTest, DisabledPolicyMatchesNoPolicy) {
  harness::LazychkOptions options = SmallOptions(Protocol::kBackEdge);
  sim::SchedulePolicyConfig off;  // All dimensions default-off.
  core::SystemConfig with_off_policy =
      harness::LazychkConfig(options, /*seed=*/3, off);
  core::SystemConfig without = with_off_policy;
  without.schedule.reset();
  RunOutput a = RunOnce(with_off_policy);
  RunOutput b = RunOnce(without);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.metrics_text, b.metrics_text);
}

// The policy is sim-only by design: a perturbed schedule must be
// replayable from its seed, which the threads backend cannot promise.
TEST(ScheduleReplayTest, ThreadsRuntimeRejectsPolicy) {
  harness::LazychkOptions options = SmallOptions(Protocol::kDagT);
  core::SystemConfig config =
      harness::LazychkConfig(options, /*seed=*/1, options.policy);
  config.runtime = runtime::RuntimeKind::kThreads;
  Result<std::unique_ptr<core::System>> system = core::System::Create(config);
  EXPECT_FALSE(system.ok());
}

// ---------------------------------------------------------------------
// Sweeps.

TEST(LazychkSweepTest, SmallSweepIsClean) {
  harness::LazychkOptions options = SmallOptions(Protocol::kDagT);
  options.seeds = 5;
  harness::LazychkResult result = harness::RunLazychk(options);
  EXPECT_EQ(result.runs, 5);
  for (const harness::LazychkViolation& v : result.violations) {
    ADD_FAILURE() << "seed=" << v.seed << " " << v.what << "\n  replay: "
                  << v.replay;
  }
}

TEST(LazychkSweepTest, SmallSweepWithFaultsIsClean) {
  harness::LazychkOptions options = SmallOptions(Protocol::kBackEdge);
  options.seeds = 3;
  options.faults = "drop:0.01,dup:0.01,crash:2@500ms+100ms";
  harness::LazychkResult result = harness::RunLazychk(options);
  EXPECT_EQ(result.runs, 3);
  for (const harness::LazychkViolation& v : result.violations) {
    ADD_FAILURE() << "seed=" << v.seed << " " << v.what << "\n  replay: "
                  << v.replay;
  }
}

// Budgeted fuzz tier (CI's schedule-fuzz job, docs/CHECKING.md): skipped
// unless LAZYREP_FUZZ_BUDGET=N is set, then runs N seeds per protocol,
// alternating fault-free and faulty sweeps.
TEST(LazychkSweepTest, FuzzBudget) {
  const char* budget_env = std::getenv("LAZYREP_FUZZ_BUDGET");
  int budget = budget_env != nullptr ? std::atoi(budget_env) : 0;
  if (budget <= 0) {
    GTEST_SKIP() << "set LAZYREP_FUZZ_BUDGET=N to run the fuzz tier";
  }
  for (Protocol protocol :
       {Protocol::kDagWt, Protocol::kDagT, Protocol::kBackEdge}) {
    for (bool faults : {false, true}) {
      harness::LazychkOptions options = SmallOptions(protocol);
      options.txns_per_thread = 40;
      options.seeds = budget;
      options.shrink = true;
      if (faults) options.faults = "drop:0.01,dup:0.01,crash:2@500ms+100ms";
      harness::LazychkResult result = harness::RunLazychk(options);
      for (const harness::LazychkViolation& v : result.violations) {
        ADD_FAILURE() << core::ProtocolName(protocol)
                      << (faults ? " (faults)" : "") << " seed=" << v.seed
                      << " " << v.what << "\n  replay: " << v.replay;
      }
    }
  }
}

}  // namespace
}  // namespace lazyrep
