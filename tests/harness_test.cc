// Tests for the experiment harness (src/harness): aggregation over seeds,
// CLI parsing, table formatting, and the Table 1 default configuration.

#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace lazyrep::harness {
namespace {

TEST(PaperConfigTest, CarriesTableOneDefaults) {
  core::SystemConfig config = PaperConfig(core::Protocol::kBackEdge);
  EXPECT_EQ(config.protocol, core::Protocol::kBackEdge);
  EXPECT_EQ(config.workload.num_sites, 9);
  EXPECT_EQ(config.workload.num_items, 200);
  EXPECT_EQ(config.workload.threads_per_site, 3);
  EXPECT_EQ(config.workload.txns_per_thread, 1000);
  EXPECT_DOUBLE_EQ(config.workload.replication_prob, 0.2);
  EXPECT_DOUBLE_EQ(config.workload.backedge_prob, 0.2);
  EXPECT_EQ(config.workload.deadlock_timeout, Millis(50));
  EXPECT_EQ(config.workload.network_latency, Millis(0.15));
  EXPECT_TRUE(config.check_serializability);
}

TEST(RunSeedsTest, AggregatesOverSeeds) {
  core::SystemConfig config = PaperConfig(core::Protocol::kDagWt);
  config.workload.backedge_prob = 0.0;
  config.workload.num_sites = 3;
  config.workload.num_items = 30;
  config.workload.txns_per_thread = 20;
  AggregateResult result = RunSeeds(config, 3);
  EXPECT_EQ(result.runs, 3);
  EXPECT_GT(result.throughput, 0.0);
  EXPECT_GT(result.committed, 0);
  EXPECT_TRUE(result.all_serializable);
  EXPECT_TRUE(result.all_converged);
  EXPECT_FALSE(result.saturated);
  // Different seeds give (slightly) different throughputs.
  EXPECT_GT(result.throughput_sd, 0.0);
}

TEST(RunSeedsTest, SaturationReportedWhenAllowed) {
  core::SystemConfig config = PaperConfig(core::Protocol::kDagWt);
  config.workload.backedge_prob = 0.0;
  config.max_sim_time = Millis(1);  // Cannot possibly finish.
  AggregateResult result = RunSeeds(config, 1, /*allow_timeout=*/true);
  EXPECT_TRUE(result.saturated);
  EXPECT_EQ(result.runs, 0);
}

TEST(ParseBenchArgsTest, Defaults) {
  char prog[] = "bench";
  char* argv[] = {prog};
  BenchOptions options = ParseBenchArgs(1, argv);
  EXPECT_EQ(options.txns_per_thread, 300);
  EXPECT_EQ(options.seeds, 3);
  EXPECT_FALSE(options.quick);
}

TEST(ParseBenchArgsTest, QuickAndFull) {
  char prog[] = "bench";
  char quick[] = "--quick";
  char* argv_q[] = {prog, quick};
  BenchOptions q = ParseBenchArgs(2, argv_q);
  EXPECT_TRUE(q.quick);
  EXPECT_EQ(q.txns_per_thread, 100);
  EXPECT_EQ(q.seeds, 1);

  char full[] = "--full";
  char* argv_f[] = {prog, full};
  BenchOptions f = ParseBenchArgs(2, argv_f);
  EXPECT_EQ(f.txns_per_thread, 1000);  // The paper's setting.
}

TEST(ParseBenchArgsTest, ExplicitValues) {
  char prog[] = "bench";
  char txns[] = "--txns=42";
  char seeds[] = "--seeds=7";
  char* argv[] = {prog, txns, seeds};
  BenchOptions options = ParseBenchArgs(3, argv);
  EXPECT_EQ(options.txns_per_thread, 42);
  EXPECT_EQ(options.seeds, 7);
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::Num(3.14159), "3.14");
  EXPECT_EQ(Table::Num(3.14159, 1), "3.1");
  EXPECT_EQ(Table::Num(10, 0), "10");
}

TEST(ApplyOptionsTest, OverridesTxnsPerThread) {
  BenchOptions options;
  options.txns_per_thread = 123;
  core::SystemConfig config = PaperConfig(core::Protocol::kPsl);
  ApplyOptions(options, &config);
  EXPECT_EQ(config.workload.txns_per_thread, 123);
}

}  // namespace
}  // namespace lazyrep::harness
