// 100+ site scale smoke tier (docs/SCALE.md): every generated topology
// family at 128 sites must complete serializable, converged, and
// WAL-replay-clean under each protocol that supports its copy graph —
// on the deterministic sim, and (for the acceptance pair) on the
// threads runtime. Also pins the setup-cost contract: assembling a
// large system does zero full O(items) placement scans.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "graph/copy_graph.h"
#include "harness/experiment.h"
#include "harness/lazychk.h"

namespace lazyrep::harness {
namespace {

// One quiesced run through lazychk's invariant oracle (no schedule
// perturbation): empty string = every invariant held.
std::string RunTopology(core::Protocol protocol, const std::string& topology,
                        runtime::RuntimeKind runtime, int txns,
                        uint64_t seed = 7) {
  LazychkOptions options;
  options.protocol = protocol;
  options.topology = topology;
  options.txns_per_thread = txns;
  core::SystemConfig config =
      LazychkConfig(options, seed, sim::SchedulePolicyConfig{});
  config.runtime = runtime;
  return CheckInvariants(config);
}

using Case = std::pair<core::Protocol, const char*>;

class TopologySmoke : public ::testing::TestWithParam<Case> {};

TEST_P(TopologySmoke, RunsCleanAt128Sites) {
  auto [protocol, topology] = GetParam();
  EXPECT_EQ(RunTopology(protocol, topology, runtime::RuntimeKind::kSim,
                        /*txns=*/3),
            "");
}

// DAG(WT)/DAG(T) need an acyclic copy graph, so they get rand at
// density 0; BackEdge additionally covers the cyclic rand:128,0.10.
INSTANTIATE_TEST_SUITE_P(
    Families, TopologySmoke,
    ::testing::Values(
        Case{core::Protocol::kDagWt, "chain:128"},
        Case{core::Protocol::kDagWt, "tree:128,4"},
        Case{core::Protocol::kDagWt, "fan:128"},
        Case{core::Protocol::kDagWt, "rand:128,0"},
        Case{core::Protocol::kDagT, "chain:128"},
        Case{core::Protocol::kDagT, "tree:128,4"},
        Case{core::Protocol::kDagT, "fan:128"},
        Case{core::Protocol::kDagT, "rand:128,0"},
        Case{core::Protocol::kBackEdge, "chain:128"},
        Case{core::Protocol::kBackEdge, "tree:128,4"},
        Case{core::Protocol::kBackEdge, "fan:128"},
        Case{core::Protocol::kBackEdge, "rand:128,0.10"}),
    [](const auto& info) {
      std::string name = core::ProtocolName(info.param.first);
      name += "_";
      name += info.param.second;
      std::erase_if(name, [](char c) { return !std::isalnum(c); });
      return name;
    });

// The acceptance pair on the threads runtime: a 128-site deep chain
// under each DAG protocol and the 128-site random cyclic graph under
// BackEdge, real OS threads, tiny load.
TEST(TopologyThreads, DeepChain128RunsCleanUnderDagProtocols) {
  EXPECT_EQ(RunTopology(core::Protocol::kDagWt, "chain:128",
                        runtime::RuntimeKind::kThreads, /*txns=*/2),
            "");
  EXPECT_EQ(RunTopology(core::Protocol::kDagT, "chain:128",
                        runtime::RuntimeKind::kThreads, /*txns=*/2),
            "");
}

TEST(TopologyThreads, RandomBackedge128RunsCleanUnderBackEdge) {
  EXPECT_EQ(RunTopology(core::Protocol::kBackEdge, "rand:128,0.10",
                        runtime::RuntimeKind::kThreads, /*txns=*/2),
            "");
  EXPECT_EQ(RunTopology(core::Protocol::kBackEdge, "chain:128",
                        runtime::RuntimeKind::kThreads, /*txns=*/2),
            "");
}

// Setup-cost regression (the tentpole): building a large system must
// use the one-pass per-site indices, never the per-site O(items)
// placement scans — otherwise setup is O(items × sites) again.
TEST(TopologyScaleSetup, SystemCreateDoesNoFullPlacementScans) {
  LazychkOptions options;
  options.protocol = core::Protocol::kDagT;
  options.topology = "chain:96";
  options.txns_per_thread = 1;
  core::SystemConfig config =
      LazychkConfig(options, /*seed=*/3, sim::SchedulePolicyConfig{});
  const long before = graph::Placement::FullScanCount();
  Result<std::unique_ptr<core::System>> system = core::System::Create(config);
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  EXPECT_EQ(graph::Placement::FullScanCount(), before)
      << "System::Create re-scanned the placement per site";
}

}  // namespace
}  // namespace lazyrep::harness
