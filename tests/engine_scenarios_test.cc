// Scripted protocol scenarios: deterministic reconstructions of the
// paper's worked examples (§2's Example 1.1 discussion, §3.2's timestamp
// walkthrough, §3.3's progress example, §4.1's Example 4.1 trace) plus
// per-engine behaviours that randomized workloads cannot pin down.

#include <gtest/gtest.h>

#include "core/engine_backedge.h"
#include "core/engine_dag_t.h"
#include "core/engine_dag_wt.h"
#include "core/engine_psl.h"
#include "core/system.h"

namespace lazyrep::core {
namespace {

using workload::TxnSpec;

// Example 1.1 / Figure 1: item 0 ("a") primary at site 0 with replicas at
// 1 and 2; item 1 ("b") primary at site 1 with a replica at 2.
graph::Placement Example11() {
  graph::Placement p;
  p.num_sites = 3;
  p.num_items = 2;
  p.primary = {0, 1};
  p.replicas = {{1, 2}, {2}};
  return p;
}

// Example 4.1: two sites, mutual replication.
graph::Placement Example41() {
  graph::Placement p;
  p.num_sites = 2;
  p.num_items = 2;
  p.primary = {0, 1};
  p.replicas = {{1}, {0}};
  return p;
}

SystemConfig ScriptedConfig(Protocol protocol, graph::Placement placement) {
  SystemConfig config;
  config.protocol = protocol;
  config.placement = placement;
  config.workload.num_sites = placement.num_sites;
  config.workload.num_items = placement.num_items;
  config.workload.sites_per_machine = placement.num_sites;
  return config;
}

TxnSpec Write(std::initializer_list<ItemId> items) {
  TxnSpec spec;
  for (ItemId i : items) spec.ops.push_back({true, i});
  return spec;
}

TxnSpec ReadThenWrite(ItemId read_item, ItemId write_item) {
  TxnSpec spec;
  spec.ops.push_back({false, read_item});
  spec.ops.push_back({true, write_item});
  return spec;
}

// ------------------------------------------------------------- DAG(WT)

TEST(DagWtScenario, UpdateIsRelayedThroughTheChain) {
  auto system = System::Create(
      ScriptedConfig(Protocol::kDagWt, Example11()));
  ASSERT_TRUE(system.ok());
  System& sys = **system;
  ASSERT_TRUE(sys.RunOneTransaction(0, Write({0})).ok());
  sys.DrainPropagation();
  Value v = sys.database(0).store().Get(0).value();
  EXPECT_EQ(sys.database(1).store().Get(0).value(), v);
  EXPECT_EQ(sys.database(2).store().Get(0).value(), v);
  // Chain 0-1-2: the update travelled 0->1 and 1->2; never 0->2 directly.
  ProtocolNetwork::Stats net = sys.network().Snapshot();
  EXPECT_EQ(net.sent_from[0], 1u);
  EXPECT_EQ(net.sent_from[1], 1u);
  EXPECT_EQ(net.total_messages, 2u);
}

TEST(DagWtScenario, IrrelevantChildrenAreSkipped) {
  // Item 1's only replica is at site 2; a site-1 update of it must go
  // 1->2 but site 2 (a leaf) forwards nothing.
  auto system = System::Create(
      ScriptedConfig(Protocol::kDagWt, Example11()));
  ASSERT_TRUE(system.ok());
  System& sys = **system;
  ASSERT_TRUE(sys.RunOneTransaction(1, Write({1})).ok());
  sys.DrainPropagation();
  EXPECT_EQ(sys.network().Snapshot().total_messages, 1u);
  EXPECT_EQ(sys.database(2).store().Get(1).value(),
            sys.database(1).store().Get(1).value());
}

TEST(DagWtScenario, SecondariesCommitInForwardingOrder) {
  // Two sequential site-0 updates of the same item arrive FIFO; the
  // final replica value everywhere is the second write's.
  auto system = System::Create(
      ScriptedConfig(Protocol::kDagWt, Example11()));
  ASSERT_TRUE(system.ok());
  System& sys = **system;
  ASSERT_TRUE(sys.RunOneTransaction(0, Write({0})).ok());
  ASSERT_TRUE(sys.RunOneTransaction(0, Write({0})).ok());
  sys.DrainPropagation();
  Value v = sys.database(0).store().Get(0).value();
  EXPECT_EQ(sys.database(1).store().Get(0).value(), v);
  EXPECT_EQ(sys.database(2).store().Get(0).value(), v);
  // Both replicas saw both versions (two in-place updates each).
  EXPECT_EQ(sys.database(1).store().Version(0), 2);
  EXPECT_EQ(sys.database(2).store().Version(0), 2);
  EXPECT_TRUE(sys.CheckHistory().serializable);
}

TEST(DagWtScenario, EnginesQuiescentAfterDrain) {
  auto system = System::Create(
      ScriptedConfig(Protocol::kDagWt, Example11()));
  ASSERT_TRUE(system.ok());
  System& sys = **system;
  ASSERT_TRUE(sys.RunOneTransaction(0, Write({0})).ok());
  sys.DrainPropagation();
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_TRUE(sys.engine(s).Quiescent()) << "site " << s;
  }
}

TEST(DagWtScenario, BatchingCutsMessagesAndPreservesEverything) {
  // Three sequential updates with a large batch window travel as one
  // batch per hop instead of three messages.
  auto run = [](Duration window) {
    SystemConfig config = ScriptedConfig(Protocol::kDagWt, Example11());
    config.engine.batch_window = window;
    auto system = System::Create(std::move(config));
    LAZYREP_CHECK(system.ok());
    System& sys = **system;
    for (int i = 0; i < 3; ++i) {
      LAZYREP_CHECK(sys.RunOneTransaction(0, Write({0})).ok());
    }
    sys.DrainPropagation();
    struct Out {
      uint64_t messages;
      Value replica1;
      Value replica2;
      int versions;
      bool serializable;
    };
    return Out{sys.network().Snapshot().total_messages,
               sys.database(1).store().Get(0).value(),
               sys.database(2).store().Get(0).value(),
               static_cast<int>(sys.database(2).store().Version(0)),
               sys.CheckHistory().serializable};
  };
  auto unbatched = run(0);
  auto batched = run(Millis(100));
  EXPECT_EQ(unbatched.messages, 6u);  // 3 updates x 2 hops.
  EXPECT_LT(batched.messages, unbatched.messages);
  // Same final state; all three versions applied in order.
  EXPECT_EQ(batched.replica1, unbatched.replica1);
  EXPECT_EQ(batched.replica2, unbatched.replica2);
  EXPECT_EQ(batched.versions, 3);
  EXPECT_TRUE(batched.serializable);
}

TEST(DagWtScenario, BatchingRejectedForOtherProtocols) {
  SystemConfig config = ScriptedConfig(Protocol::kBackEdge, Example41());
  config.engine.batch_window = Millis(5);
  auto system = System::Create(std::move(config));
  EXPECT_FALSE(system.ok());
  EXPECT_EQ(system.status().code(), StatusCode::kInvalidArgument);
}

// -------------------------------------------------------------- DAG(T)

TEST(DagTScenario, TimestampWalkthroughFromSection32) {
  // §3.2's trace on Example 1.1: T1 commits at s1 (site 0) and gets
  // timestamp (s1,1). When T1's secondary commits at s2 (site 1), the
  // site timestamp becomes (s1,1)(s2,0); T2 then commits at s2 with
  // (s1,1)(s2,1).
  auto system = System::Create(
      ScriptedConfig(Protocol::kDagT, Example11()));
  ASSERT_TRUE(system.ok());
  System& sys = **system;

  ASSERT_TRUE(sys.RunOneTransaction(0, Write({0})).ok());  // T1 writes a.
  auto& s0 = dynamic_cast<DagTEngine&>(sys.engine(0));
  EXPECT_EQ(s0.site_timestamp().tuples(),
            (std::vector<TsTuple>{{0, 1}}));

  sys.DrainPropagation();  // T1's secondaries reach s2 and s3.
  auto& s1 = dynamic_cast<DagTEngine&>(sys.engine(1));
  EXPECT_EQ(s1.site_timestamp().tuples(),
            (std::vector<TsTuple>{{0, 1}, {1, 0}}));

  // T2 at s2 reads a (sees T1's value) and writes b.
  ASSERT_TRUE(sys.RunOneTransaction(1, ReadThenWrite(0, 1)).ok());
  EXPECT_EQ(s1.site_timestamp().tuples(),
            (std::vector<TsTuple>{{0, 1}, {1, 1}}));

  sys.DrainPropagation();
  // s3 (site 2) committed T1 then T2 — serializable, converged.
  EXPECT_EQ(sys.database(2).store().Get(0).value(),
            sys.database(0).store().Get(0).value());
  EXPECT_EQ(sys.database(2).store().Get(1).value(),
            sys.database(1).store().Get(1).value());
  EXPECT_TRUE(sys.CheckHistory().serializable);
}

TEST(DagTScenario, DummiesUnblockMultiParentSites) {
  // §3.3's progress example: site 2 has parents {0, 1}. A transaction
  // from site 0 alone cannot execute at site 2 until traffic (a dummy)
  // arrives from site 1 as well.
  auto system = System::Create(
      ScriptedConfig(Protocol::kDagT, Example11()));
  ASSERT_TRUE(system.ok());
  System& sys = **system;
  ASSERT_TRUE(sys.RunOneTransaction(0, Write({0})).ok());
  // Run only briefly: not yet applied at site 2 (queue from site 1 still
  // empty, dummy period is 25 ms).
  sys.simulator().RunUntil(sys.simulator().Now() + Millis(2));
  EXPECT_EQ(sys.database(2).store().Get(0).value(), 0);
  // Drain (dummies flow): now applied.
  sys.DrainPropagation();
  EXPECT_EQ(sys.database(2).store().Get(0).value(),
            sys.database(0).store().Get(0).value());
  uint64_t dummies = 0;
  for (SiteId s = 0; s < 3; ++s) {
    dummies += dynamic_cast<DagTEngine&>(sys.engine(s)).dummies_sent();
  }
  EXPECT_GT(dummies, 0u);
}

TEST(DagTScenario, UpdatesGoDirectlyToReplicaSites) {
  // Unlike DAG(WT), site 0's update is sent straight to both replica
  // sites (plus whatever dummies flow).
  auto system = System::Create(
      ScriptedConfig(Protocol::kDagT, Example11()));
  ASSERT_TRUE(system.ok());
  System& sys = **system;
  ASSERT_TRUE(sys.RunOneTransaction(0, Write({0})).ok());
  sys.DrainPropagation();
  // Messages depart only after the sender's per-message CPU is paid, so
  // the counter is checked after the drain. Direct to sites 1 and 2.
  EXPECT_GE(sys.network().Snapshot().sent_from[0], 2u);
  EXPECT_EQ(sys.database(2).store().Get(0).value(),
            sys.database(0).store().Get(0).value());
}

// ------------------------------------------------------------ BackEdge

TEST(BackEdgeScenario, BackedgeUpdateCommitsViaTwoPhaseCommit) {
  // Site 1 updates item 1, whose replica lives at site 0 — a tree
  // ancestor. The eager path must update it atomically with the commit.
  auto system = System::Create(
      ScriptedConfig(Protocol::kBackEdge, Example41()));
  ASSERT_TRUE(system.ok());
  System& sys = **system;
  ASSERT_TRUE(sys.RunOneTransaction(1, Write({1})).ok());
  sys.DrainPropagation();
  EXPECT_EQ(sys.database(0).store().Get(1).value(),
            sys.database(1).store().Get(1).value());
  auto& engine1 = dynamic_cast<BackEdgeEngine&>(sys.engine(1));
  EXPECT_EQ(engine1.backedge_txns(), 1u);
  EXPECT_TRUE(sys.CheckHistory().serializable);
  for (SiteId s = 0; s < 2; ++s) {
    EXPECT_TRUE(sys.engine(s).Quiescent());
  }
}

TEST(BackEdgeScenario, DownhillUpdateStaysLazy) {
  auto system = System::Create(
      ScriptedConfig(Protocol::kBackEdge, Example41()));
  ASSERT_TRUE(system.ok());
  System& sys = **system;
  ASSERT_TRUE(sys.RunOneTransaction(0, Write({0})).ok());
  sys.DrainPropagation();
  EXPECT_EQ(sys.database(1).store().Get(0).value(),
            sys.database(0).store().Get(0).value());
  auto& engine0 = dynamic_cast<BackEdgeEngine&>(sys.engine(0));
  EXPECT_EQ(engine0.backedge_txns(), 0u);
  // One lazy secondary message only — no 2PC traffic.
  EXPECT_EQ(sys.network().Snapshot().total_messages, 1u);
}

TEST(BackEdgeScenario, Example41GlobalDeadlockResolvedPerPaper) {
  // §4.1's trace: T1 at s1 reads b and updates a; T2 at s2 reads a and
  // updates b, concurrently. T2 goes backedge-pending (its update to b
  // must reach s1 eagerly); T1 commits and its secondary for a blocks on
  // T2's read lock at s2; the timeout fires and — per the paper — T2,
  // the backedge-pending transaction, is aborted, never T1's secondary.
  auto system = System::Create(
      ScriptedConfig(Protocol::kBackEdge, Example41()));
  ASSERT_TRUE(system.ok());
  System& sys = **system;
  sys.StartEngines();
  Status st1 = Status::Internal("unset"), st2 = Status::Internal("unset");
  // Launch both transactions at t=0 through their engines.
  auto launch = [&sys](SiteId site, TxnSpec spec, Status* out) {
    sys.simulator().Spawn(
        [](System* s, SiteId at, TxnSpec sp, Status* o) -> sim::Co<void> {
          *o = co_await s->engine(at).ExecutePrimary(
              GlobalTxnId{at, 1000}, sp);
        }(&sys, site, std::move(spec), out));
  };
  launch(0, ReadThenWrite(/*read b=*/1, /*write a=*/0), &st1);
  launch(1, ReadThenWrite(/*read a=*/0, /*write b=*/1), &st2);
  sys.simulator().Run();  // BackEdge has no periodic processes.

  // T1 has no backedge subtransaction and commits; T2 is the victim.
  EXPECT_TRUE(st1.ok()) << st1.ToString();
  EXPECT_TRUE(st2.IsAbort()) << st2.ToString();
  sys.DrainPropagation();
  // T1's update to a reached s2; b was rolled back everywhere.
  EXPECT_EQ(sys.database(1).store().Get(0).value(),
            sys.database(0).store().Get(0).value());
  EXPECT_EQ(sys.database(0).store().Get(1).value(), 0);
  EXPECT_EQ(sys.database(1).store().Get(1).value(), 0);
  EXPECT_TRUE(sys.CheckHistory().serializable);
  for (SiteId s = 0; s < 2; ++s) {
    EXPECT_TRUE(sys.engine(s).Quiescent());
  }
}

TEST(BackEdgeScenario, ConcurrentBackedgeTransactionsBothCommit) {
  // Two site-1 transactions with disjoint backedge targets pend at the
  // same time; the applier serializes their specials/2PCs and both
  // commit.
  graph::Placement p;
  p.num_sites = 2;
  p.num_items = 3;
  p.primary = {0, 1, 1};
  p.replicas = {{1}, {0}, {0}};  // Items 1 and 2 backedge to site 0.
  auto system = System::Create(ScriptedConfig(Protocol::kBackEdge, p));
  ASSERT_TRUE(system.ok());
  System& sys = **system;
  sys.StartEngines();
  Status st1 = Status::Internal("unset"), st2 = Status::Internal("unset");
  auto launch = [&sys](int64_t seq, TxnSpec spec, Status* out) {
    sys.simulator().Spawn(
        [](System* s, int64_t q, TxnSpec sp, Status* o) -> sim::Co<void> {
          *o = co_await s->engine(1).ExecutePrimary(GlobalTxnId{1, q}, sp);
        }(&sys, seq, std::move(spec), out));
  };
  launch(1, Write({1}), &st1);
  launch(2, Write({2}), &st2);
  sys.simulator().Run();
  sys.DrainPropagation();
  EXPECT_TRUE(st1.ok()) << st1.ToString();
  EXPECT_TRUE(st2.ok()) << st2.ToString();
  EXPECT_EQ(sys.database(0).store().Get(1).value(),
            sys.database(1).store().Get(1).value());
  EXPECT_EQ(sys.database(0).store().Get(2).value(),
            sys.database(1).store().Get(2).value());
  auto& engine1 = dynamic_cast<BackEdgeEngine&>(sys.engine(1));
  EXPECT_EQ(engine1.backedge_txns(), 2u);
  EXPECT_TRUE(sys.CheckHistory().serializable);
  EXPECT_TRUE(sys.engine(0).Quiescent());
  EXPECT_TRUE(sys.engine(1).Quiescent());
}

TEST(BackEdgeScenario, BackedgeSubtransactionVictimizesRemotePrimary) {
  // The other half of the victim rule: the backedge subtransaction at the
  // remote site is a secondary-class waiter, so when it blocks on a local
  // primary holding the replica lock past the timeout, it kills the
  // HOLDER and proceeds — the origin transaction commits.
  auto system = System::Create(
      ScriptedConfig(Protocol::kBackEdge, Example41()));
  ASSERT_TRUE(system.ok());
  System& sys = **system;
  sys.StartEngines();
  // A raw site-0 transaction camps on item 1's replica for 300 ms (well
  // past the 50 ms timeout).
  storage::TxnPtr camper;
  sys.simulator().Spawn(
      [](System* s, storage::TxnPtr* out) -> sim::Co<void> {
        storage::TxnPtr t = s->database(0).Begin(
            GlobalTxnId{0, 900}, storage::TxnKind::kPrimary);
        *out = t;
        Status st = co_await s->database(0).Write(t, 1, 42);
        LAZYREP_CHECK(st.ok());
        co_await s->simulator().Delay(Millis(300));
        if (t->abort_requested()) {
          co_await s->database(0).Abort(t);
        } else {
          (void)co_await s->database(0).Commit(t);
        }
      }(&sys, &camper));
  Status st2 = Status::Internal("unset");
  sys.simulator().Spawn(
      [](System* s, Status* out) -> sim::Co<void> {
        co_await s->simulator().Delay(Millis(1));
        TxnSpec spec;
        spec.ops.push_back({true, 1});  // Backedge write.
        *out = co_await s->engine(1).ExecutePrimary(GlobalTxnId{1, 901},
                                                    spec);
      }(&sys, &st2));
  sys.simulator().Run();
  sys.DrainPropagation();
  EXPECT_TRUE(st2.ok()) << st2.ToString();
  ASSERT_NE(camper, nullptr);
  EXPECT_TRUE(camper->abort_requested());  // The holder was the victim.
  EXPECT_EQ(sys.database(0).store().Get(1).value(),
            sys.database(1).store().Get(1).value());
  EXPECT_TRUE(sys.CheckHistory().serializable);
}

TEST(BackEdgeScenario, MultiHopSpecialTraversesThePath) {
  // Chain 0-1-2-3; site 3 writes an item replicated at 0 and 2: the
  // special subtransaction executes at 0, relays through 1 (no replica)
  // and 2 (replica), and the 2PC commits all of them.
  graph::Placement p;
  p.num_sites = 4;
  p.num_items = 4;
  p.primary = {3, 0, 1, 2};           // Item 0 owned by site 3.
  p.replicas = {{0, 2}, {1}, {2}, {3}};
  auto system = System::Create(ScriptedConfig(Protocol::kBackEdge, p));
  ASSERT_TRUE(system.ok());
  System& sys = **system;
  ASSERT_TRUE(sys.RunOneTransaction(3, Write({0})).ok());
  sys.DrainPropagation();
  Value v = sys.database(3).store().Get(0).value();
  EXPECT_NE(v, 0);
  EXPECT_EQ(sys.database(0).store().Get(0).value(), v);
  EXPECT_EQ(sys.database(2).store().Get(0).value(), v);
  EXPECT_TRUE(sys.CheckHistory().serializable);
}

// ------------------------------------------------------------------ PSL

TEST(PslScenario, RemoteReadLeavesReplicaUntouched) {
  auto system = System::Create(
      ScriptedConfig(Protocol::kPsl, Example11()));
  ASSERT_TRUE(system.ok());
  System& sys = **system;
  ASSERT_TRUE(sys.RunOneTransaction(0, Write({0})).ok());
  // Site 2 reads item 0 — a replica there, so the read goes to site 0.
  TxnSpec read_a;
  read_a.ops.push_back({false, 0});
  ASSERT_TRUE(sys.RunOneTransaction(2, read_a).ok());
  sys.DrainPropagation();
  auto& engine2 = dynamic_cast<PslEngine&>(sys.engine(2));
  EXPECT_EQ(engine2.remote_reads(), 1u);
  // The local replica copy was never written (version 0, value 0).
  EXPECT_EQ(sys.database(2).store().Version(0), 0);
  EXPECT_EQ(sys.database(2).store().Get(0).value(), 0);
  EXPECT_TRUE(sys.CheckHistory().serializable);
  EXPECT_TRUE(engine2.Quiescent());
  EXPECT_TRUE(sys.engine(0).Quiescent());  // Proxy released.
}

TEST(PslScenario, LocalReadsNeverContactTheNetwork) {
  auto system = System::Create(
      ScriptedConfig(Protocol::kPsl, Example11()));
  ASSERT_TRUE(system.ok());
  System& sys = **system;
  TxnSpec spec = ReadThenWrite(0, 0);  // Item 0 is local at site 0.
  ASSERT_TRUE(sys.RunOneTransaction(0, spec).ok());
  EXPECT_EQ(sys.network().Snapshot().total_messages, 0u);
}

TEST(PslScenario, ConflictSerializedAtThePrimary) {
  // Site 2 reads item 0 remotely, then site 0 writes it, then site 2
  // reads again — the conflicts are recorded at the primary site and the
  // combined history is serializable.
  auto system = System::Create(
      ScriptedConfig(Protocol::kPsl, Example11()));
  ASSERT_TRUE(system.ok());
  System& sys = **system;
  TxnSpec read_a;
  read_a.ops.push_back({false, 0});
  ASSERT_TRUE(sys.RunOneTransaction(2, read_a).ok());
  ASSERT_TRUE(sys.RunOneTransaction(0, Write({0})).ok());
  ASSERT_TRUE(sys.RunOneTransaction(2, read_a).ok());
  sys.DrainPropagation();
  SerializabilityVerdict verdict = sys.CheckHistory();
  EXPECT_TRUE(verdict.serializable);
  EXPECT_GE(verdict.edges, 2u);  // r->w and w->r at the primary.
}

TEST(PslScenario, RemoteLockDenialAbortsTheRequester) {
  // A site-0 transaction holds X on item 0 for longer than the 50 ms
  // lock timeout; a site-2 remote read of item 0 is denied at the
  // primary and the requester aborts — the PSL global-deadlock
  // mechanism.
  auto system = System::Create(
      ScriptedConfig(Protocol::kPsl, Example11()));
  ASSERT_TRUE(system.ok());
  System& sys = **system;
  sys.StartEngines();
  Status reader_status = Status::Internal("pending");
  // Holder: a raw database transaction that sits on the lock for 200 ms.
  sys.simulator().Spawn(
      [](System* s) -> sim::Co<void> {
        storage::TxnPtr holder = s->database(0).Begin(
            GlobalTxnId{0, 500}, storage::TxnKind::kPrimary);
        Status st = co_await s->database(0).Write(holder, 0, 1);
        LAZYREP_CHECK(st.ok());
        co_await s->simulator().Delay(Millis(200));
        co_await s->database(0).Abort(holder);
      }(&sys));
  sys.simulator().Spawn(
      [](System* s, Status* out) -> sim::Co<void> {
        co_await s->simulator().Delay(Millis(1));
        workload::TxnSpec read_a;
        read_a.ops.push_back({false, 0});
        *out = co_await s->engine(2).ExecutePrimary(GlobalTxnId{2, 1},
                                                    read_a);
      }(&sys, &reader_status));
  sys.simulator().Run();
  EXPECT_TRUE(reader_status.IsAbort()) << reader_status.ToString();
  sys.DrainPropagation();
  // Proxies cleaned up on both ends.
  EXPECT_TRUE(sys.engine(0).Quiescent());
  EXPECT_TRUE(sys.engine(2).Quiescent());
  EXPECT_TRUE(sys.CheckHistory().serializable);
}

// ---------------------------------------------------------------- Eager

TEST(EagerScenario, ReplicasUpdatedBeforeCommitCompletes) {
  auto system = System::Create(
      ScriptedConfig(Protocol::kEager, Example11()));
  ASSERT_TRUE(system.ok());
  System& sys = **system;
  ASSERT_TRUE(sys.RunOneTransaction(0, Write({0})).ok());
  // The transaction only returns after the 2PC decision: replicas are
  // already current with no further drain needed for data (acks may
  // still be in flight).
  Value v = sys.database(0).store().Get(0).value();
  EXPECT_EQ(sys.database(1).store().Get(0).value(), v);
  EXPECT_EQ(sys.database(2).store().Get(0).value(), v);
  sys.DrainPropagation();
  EXPECT_TRUE(sys.CheckHistory().serializable);
}

// ------------------------------------------------------------ NaiveLazy

TEST(NaiveScenario, DirectFanoutWithoutOrderingControl) {
  auto system = System::Create(
      ScriptedConfig(Protocol::kNaiveLazy, Example11()));
  ASSERT_TRUE(system.ok());
  System& sys = **system;
  ASSERT_TRUE(sys.RunOneTransaction(0, Write({0})).ok());
  sys.DrainPropagation();
  // Direct to both replica holders (like DAG(T), unlike DAG(WT));
  // counted after the drain since departure follows the send CPU charge.
  EXPECT_EQ(sys.network().Snapshot().sent_from[0], 2u);
  EXPECT_EQ(sys.database(2).store().Get(0).value(),
            sys.database(0).store().Get(0).value());
}

}  // namespace
}  // namespace lazyrep::core
