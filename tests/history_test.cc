// Tests for the history recorder and global serializability checker
// (src/core/history.*).

#include <gtest/gtest.h>

#include "core/history.h"
#include "runtime/sim_runtime.h"

namespace lazyrep::core {
namespace {

GlobalTxnId Id(SiteId site, int64_t seq) { return GlobalTxnId{site, seq}; }

/// Builds per-site histories record by record; commit sequence numbers
/// are assigned in call order per site (which is what strict 2PL
/// guarantees in the real system).
class HistoryBuilder {
 public:
  HistoryBuilder& At(SiteId site, GlobalTxnId origin,
                     std::initializer_list<ItemId> reads,
                     std::initializer_list<ItemId> writes) {
    HistoryRecorder::Record record;
    record.site = site;
    record.origin = origin;
    record.commit_seq = next_seq_[site]++;
    record.reads = reads;
    record.writes = writes;
    recorder_.AddRecord(std::move(record));
    return *this;
  }

  SerializabilityVerdict Check() const {
    return CheckSerializability(recorder_);
  }

  const HistoryRecorder& recorder() const { return recorder_; }

 private:
  HistoryRecorder recorder_;
  std::map<SiteId, int64_t> next_seq_;
};

TEST(CheckerTest, EmptyHistoryIsSerializable) {
  HistoryBuilder h;
  SerializabilityVerdict v = h.Check();
  EXPECT_TRUE(v.serializable);
  EXPECT_EQ(v.nodes, 0u);
  EXPECT_EQ(v.edges, 0u);
}

TEST(CheckerTest, NonConflictingTransactionsAreSerializable) {
  HistoryBuilder h;
  h.At(0, Id(0, 1), {}, {1});
  h.At(0, Id(0, 2), {}, {2});
  h.At(1, Id(1, 1), {3}, {4});
  SerializabilityVerdict v = h.Check();
  EXPECT_TRUE(v.serializable);
  EXPECT_EQ(v.nodes, 3u);
  EXPECT_EQ(v.edges, 0u);
}

TEST(CheckerTest, WriteWriteEdgeDetected) {
  HistoryBuilder h;
  h.At(0, Id(0, 1), {}, {1});
  h.At(0, Id(0, 2), {}, {1});
  SerializabilityVerdict v = h.Check();
  EXPECT_TRUE(v.serializable);
  EXPECT_EQ(v.edges, 1u);
}

TEST(CheckerTest, SameSiteOrderIsConsistent) {
  // A chain of conflicts at one site can never cycle: local commit order
  // is total.
  HistoryBuilder h;
  h.At(0, Id(0, 1), {}, {1});
  h.At(0, Id(0, 2), {1}, {2});
  h.At(0, Id(0, 3), {2}, {1});
  EXPECT_TRUE(h.Check().serializable);
}

TEST(CheckerTest, CrossSiteInversionIsDetected) {
  // T_a before T_b at site 0 (ww on item 1), T_b before T_a at site 1
  // (ww on item 2): the classic two-site cycle (Example 4.1 flavour).
  HistoryBuilder h;
  h.At(0, Id(0, 1), {}, {1});
  h.At(0, Id(1, 1), {}, {1});
  h.At(1, Id(1, 1), {}, {2});
  h.At(1, Id(0, 1), {}, {2});
  SerializabilityVerdict v = h.Check();
  EXPECT_FALSE(v.serializable);
  ASSERT_GE(v.cycle.size(), 2u);
}

TEST(CheckerTest, Example11CycleIsDetected) {
  // The paper's Example 1.1: T1 updates a (item 0); T2 reads a, writes b
  // (item 1); T3 reads a and b at site 2.
  //  * site 1: T1's secondary applied before T2 -> T1 -> T2 (wr on a);
  //  * site 2: T2's update to b applied, T3 reads a (old!) and b, then
  //    T1's update to a arrives: T2 -> T3 (wr on b), T3 -> T1 (rw on a).
  HistoryBuilder h;
  GlobalTxnId t1 = Id(0, 1), t2 = Id(1, 1), t3 = Id(2, 1);
  h.At(0, t1, {}, {0});        // T1 primary.
  h.At(1, t1, {}, {0});        // T1 secondary at s2.
  h.At(1, t2, {0}, {1});       // T2 reads new a, writes b.
  h.At(2, t2, {}, {1});        // T2's secondary (b) reaches s3 first.
  h.At(2, t3, {0, 1}, {});     // T3 reads old a, new b.
  h.At(2, t1, {}, {0});        // T1's secondary (a) arrives last.
  SerializabilityVerdict v = h.Check();
  EXPECT_FALSE(v.serializable);
  // The witness cycle must contain T1, T2 and T3.
  std::set<GlobalTxnId> members(v.cycle.begin(), v.cycle.end());
  EXPECT_TRUE(members.count(t1));
  EXPECT_TRUE(members.count(t2));
  EXPECT_TRUE(members.count(t3));
}

TEST(CheckerTest, Example11CorrectOrderIsSerializable) {
  // Same transactions, but T1's update reaches site 2 before T2's (what
  // DAG(WT)/DAG(T) enforce): serializable.
  HistoryBuilder h;
  GlobalTxnId t1 = Id(0, 1), t2 = Id(1, 1), t3 = Id(2, 1);
  h.At(0, t1, {}, {0});
  h.At(1, t1, {}, {0});
  h.At(1, t2, {0}, {1});
  h.At(2, t1, {}, {0});
  h.At(2, t2, {}, {1});
  h.At(2, t3, {0, 1}, {});
  EXPECT_TRUE(h.Check().serializable);
}

TEST(CheckerTest, SecondariesIdentifiedWithTheirOrigin) {
  // The same origin id at several sites is one node; a "conflict" of a
  // transaction with its own secondary adds no edge.
  HistoryBuilder h;
  h.At(0, Id(0, 1), {}, {1});
  h.At(1, Id(0, 1), {}, {1});
  h.At(2, Id(0, 1), {}, {1});
  SerializabilityVerdict v = h.Check();
  EXPECT_TRUE(v.serializable);
  EXPECT_EQ(v.nodes, 1u);
  EXPECT_EQ(v.edges, 0u);
}

TEST(CheckerTest, ReadDominatedByWriteInSameRecord) {
  // A record that reads and writes the same item conflicts as a writer.
  HistoryBuilder h;
  h.At(0, Id(0, 1), {1}, {1});
  h.At(0, Id(0, 2), {1}, {});
  SerializabilityVerdict v = h.Check();
  EXPECT_TRUE(v.serializable);
  EXPECT_EQ(v.edges, 1u);  // wr edge only.
}

TEST(CheckerTest, RwEdgeOrientation) {
  // Reader commits before a later writer: rw edge reader -> writer; the
  // reverse order at another site closes a cycle.
  HistoryBuilder h;
  GlobalTxnId r = Id(0, 1), w = Id(1, 1);
  h.At(0, r, {5}, {});
  h.At(0, w, {}, {5});  // r -> w at site 0.
  h.At(1, w, {}, {6});
  h.At(1, r, {6}, {});  // w -> r at site 1.
  EXPECT_FALSE(h.Check().serializable);
}

TEST(CheckerTest, VerdictToString) {
  HistoryBuilder h;
  h.At(0, Id(0, 1), {}, {1});
  SerializabilityVerdict v = h.Check();
  EXPECT_NE(v.ToString().find("serializable"), std::string::npos);
}

TEST(ReadConsistencyTest, ConsistentHistoryPasses) {
  HistoryRecorder recorder;
  HistoryRecorder::Record w;
  w.site = 0;
  w.origin = Id(0, 1);
  w.commit_seq = 0;
  w.writes = {5};
  w.writes_final = {{5, 42}};
  recorder.AddRecord(w);
  HistoryRecorder::Record r;
  r.site = 0;
  r.origin = Id(0, 2);
  r.commit_seq = 1;
  r.reads = {5};
  r.reads_observed = {{5, 42}};
  recorder.AddRecord(r);
  ReadConsistencyVerdict verdict = CheckReadConsistency(recorder);
  EXPECT_TRUE(verdict.consistent);
  EXPECT_EQ(verdict.reads_checked, 1u);
}

TEST(ReadConsistencyTest, StaleReadDetected) {
  HistoryRecorder recorder;
  HistoryRecorder::Record w;
  w.site = 0;
  w.origin = Id(0, 1);
  w.commit_seq = 0;
  w.writes_final = {{5, 42}};
  recorder.AddRecord(w);
  HistoryRecorder::Record r;
  r.site = 0;
  r.origin = Id(0, 2);
  r.commit_seq = 1;
  r.reads_observed = {{5, 0}};  // Saw the initial value: lost update.
  recorder.AddRecord(r);
  ReadConsistencyVerdict verdict = CheckReadConsistency(recorder);
  EXPECT_FALSE(verdict.consistent);
  EXPECT_NE(verdict.violation.find("item 5"), std::string::npos);
}

TEST(ReadConsistencyTest, InitialValueReadsAreZero) {
  HistoryRecorder recorder;
  HistoryRecorder::Record r;
  r.site = 3;
  r.origin = Id(3, 1);
  r.commit_seq = 0;
  r.reads_observed = {{9, 0}};
  recorder.AddRecord(r);
  EXPECT_TRUE(CheckReadConsistency(recorder).consistent);
  HistoryRecorder recorder2;
  r.reads_observed = {{9, 7}};  // Nobody wrote 7.
  recorder2.AddRecord(r);
  EXPECT_FALSE(CheckReadConsistency(recorder2).consistent);
}

TEST(ReadConsistencyTest, SitesAreIndependent) {
  // A write at site 0 does not make site 1's copy current — the checker
  // is per-site (cross-site ordering is the serializability checker's
  // job).
  HistoryRecorder recorder;
  HistoryRecorder::Record w;
  w.site = 0;
  w.origin = Id(0, 1);
  w.commit_seq = 0;
  w.writes_final = {{5, 42}};
  recorder.AddRecord(w);
  HistoryRecorder::Record r;
  r.site = 1;
  r.origin = Id(1, 1);
  r.commit_seq = 0;
  r.reads_observed = {{5, 0}};  // Replica not yet updated: fine.
  recorder.AddRecord(r);
  EXPECT_TRUE(CheckReadConsistency(recorder).consistent);
}

TEST(ReadConsistencyTest, LockOnlyReadsAreSkipped) {
  HistoryRecorder recorder;
  HistoryRecorder::Record r;
  r.site = 0;
  r.origin = Id(0, 1);
  r.commit_seq = 0;
  r.reads = {4};  // Read set without an observed value (PSL proxy).
  recorder.AddRecord(r);
  ReadConsistencyVerdict verdict = CheckReadConsistency(recorder);
  EXPECT_TRUE(verdict.consistent);
  EXPECT_EQ(verdict.reads_checked, 0u);
}

TEST(RecorderTest, OnCommitCapturesTransactionState) {
  HistoryRecorder recorder;
  storage::Database::Options options;
  options.site = 4;
  runtime::SimRuntime rt;
  sim::Simulator& sim = *rt.simulator();
  storage::Database db(&rt, options, nullptr, &recorder);
  db.store().AddItem(7, 0);
  sim.Spawn([](storage::Database* d) -> sim::Co<void> {
    storage::TxnPtr t = d->Begin(GlobalTxnId{4, 9},
                                 storage::TxnKind::kPrimary);
    Value v;
    (void)co_await d->Read(t, 7, &v);
    (void)co_await d->Write(t, 7, 1);
    (void)co_await d->Commit(t);
  }(&db));
  sim.Run();
  ASSERT_EQ(recorder.records().size(), 1u);
  const HistoryRecorder::Record& r = recorder.records()[0];
  EXPECT_EQ(r.site, 4);
  EXPECT_EQ(r.origin, (GlobalTxnId{4, 9}));
  EXPECT_EQ(r.reads, std::set<ItemId>{7});
  EXPECT_EQ(r.writes, std::set<ItemId>{7});
}

TEST(RecorderTest, CountsAborts) {
  HistoryRecorder recorder;
  storage::Database::Options options;
  runtime::SimRuntime rt;
  sim::Simulator& sim = *rt.simulator();
  storage::Database db(&rt, options, nullptr, &recorder);
  db.store().AddItem(1, 0);
  sim.Spawn([](storage::Database* d) -> sim::Co<void> {
    storage::TxnPtr t =
        d->Begin(GlobalTxnId{0, 1}, storage::TxnKind::kPrimary);
    (void)co_await d->Write(t, 1, 5);
    co_await d->Abort(t);
  }(&db));
  sim.Run();
  EXPECT_EQ(recorder.aborts_seen(), 1);
  EXPECT_TRUE(recorder.records().empty());
}

}  // namespace
}  // namespace lazyrep::core
