// Tests for the protocol event trace (src/core/trace.*) and its wiring
// through the System's observer seams.

#include <sstream>

#include <gtest/gtest.h>

#include "core/system.h"

namespace lazyrep::core {
namespace {

TEST(TraceLogTest, RecordsAndFilters) {
  TraceLog log;
  TraceEvent commit;
  commit.kind = TraceEvent::Kind::kTxnCommit;
  commit.time = Millis(1);
  commit.site = 2;
  log.Record(commit);
  TraceEvent post;
  post.kind = TraceEvent::Kind::kMsgPost;
  post.time = Millis(2);
  log.Record(post);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.OfKind(TraceEvent::Kind::kTxnCommit).size(), 1u);
  EXPECT_EQ(log.OfKind(TraceEvent::Kind::kMsgPost).size(), 1u);
  EXPECT_EQ(log.OfKind(TraceEvent::Kind::kLockWait).size(), 0u);
}

// Satellite regression: readers get an independent copy taken under the
// recording mutex, so records landing after the read are not visible
// through an already-taken snapshot (the old accessors returned live
// references into the deque).
TEST(TraceLogTest, ReadersSnapshotIndependently) {
  TraceLog log;
  TraceEvent e;
  e.kind = TraceEvent::Kind::kMsgPost;
  log.Record(e);
  std::vector<TraceEvent> snapshot = log.events();
  std::vector<TraceEvent> posts = log.OfKind(TraceEvent::Kind::kMsgPost);
  log.Record(e);
  EXPECT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(posts.size(), 1u);
  EXPECT_EQ(log.size(), 2u);
}

TEST(TraceLogTest, CapTruncates) {
  TraceLog log(3);
  for (int i = 0; i < 10; ++i) log.Record(TraceEvent{});
  EXPECT_EQ(log.size(), 3u);
  EXPECT_TRUE(log.truncated());
}

TEST(TraceLogTest, JsonlRendering) {
  TraceLog log;
  TraceEvent e;
  e.time = Millis(1.5);
  e.kind = TraceEvent::Kind::kMsgPost;
  e.site = 0;
  e.peer = 2;
  e.txn = GlobalTxnId{0, 7};
  e.detail = "secondary";
  log.Record(e);
  std::ostringstream out;
  log.WriteJsonl(out);
  EXPECT_EQ(out.str(),
            "{\"t_us\":1500,\"kind\":\"msg_post\",\"site\":0,"
            "\"txn\":\"s0#7\",\"peer\":2,\"detail\":\"secondary\"}\n");
}

TEST(MessageKindTest, NamesAndOrigins) {
  SecondaryUpdate u;
  u.origin = GlobalTxnId{1, 5};
  EXPECT_EQ(MessageKindName(ProtocolMessage(u)), "secondary");
  u.is_dummy = true;
  EXPECT_EQ(MessageKindName(ProtocolMessage(u)), "dummy");
  u.is_dummy = false;
  u.is_special = true;
  EXPECT_EQ(MessageKindName(ProtocolMessage(u)), "special_secondary");
  EXPECT_EQ(MessageOrigin(ProtocolMessage(u)), (GlobalTxnId{1, 5}));
  EXPECT_EQ(MessageKindName(ProtocolMessage(TpcPrepare{})), "2pc_prepare");
  EXPECT_EQ(MessageKindName(ProtocolMessage(PslRelease{})), "psl_release");
}

SystemConfig TracedConfig(Protocol protocol) {
  SystemConfig config;
  config.protocol = protocol;
  config.enable_trace = true;
  config.seed = 3;
  config.workload.num_sites = 3;
  config.workload.sites_per_machine = 3;
  config.workload.num_items = 30;
  config.workload.threads_per_site = 2;
  config.workload.txns_per_thread = 15;
  config.workload.backedge_prob =
      protocol == Protocol::kBackEdge ? 0.5 : 0.0;
  return config;
}

TEST(SystemTraceTest, CapturesCommitsAndMessages) {
  auto system = System::Create(TracedConfig(Protocol::kDagWt));
  ASSERT_TRUE(system.ok());
  System& sys = **system;
  RunMetrics metrics = sys.Run();
  ASSERT_NE(sys.trace(), nullptr);
  const TraceLog& trace = *sys.trace();
  // Every commit observed: primaries + secondaries.
  EXPECT_GE(static_cast<int64_t>(
                trace.OfKind(TraceEvent::Kind::kTxnCommit).size()),
            metrics.committed);
  // Post and deliver counts match and equal the network's tally.
  EXPECT_EQ(trace.OfKind(TraceEvent::Kind::kMsgPost).size(),
            sys.network().Snapshot().total_messages);
  EXPECT_EQ(trace.OfKind(TraceEvent::Kind::kMsgDeliver).size(),
            sys.network().Snapshot().total_messages);
  // Aborts traced with a reason.
  if (metrics.aborted > 0) {
    auto aborts = trace.OfKind(TraceEvent::Kind::kTxnAbort);
    ASSERT_FALSE(aborts.empty());
    EXPECT_FALSE(aborts[0].detail.empty());
  }
}

TEST(SystemTraceTest, LockWaitsAndTimeoutsTraced) {
  SystemConfig config = TracedConfig(Protocol::kBackEdge);
  config.workload.num_items = 6;  // Hot items force waits.
  config.workload.read_txn_prob = 0.0;
  config.workload.read_op_prob = 0.3;
  auto system = System::Create(std::move(config));
  ASSERT_TRUE(system.ok());
  System& sys = **system;
  RunMetrics metrics = sys.Run();
  const TraceLog& trace = *sys.trace();
  EXPECT_EQ(trace.OfKind(TraceEvent::Kind::kLockWait).size(),
            metrics.lock_waits);
  EXPECT_EQ(trace.OfKind(TraceEvent::Kind::kLockTimeout).size(),
            metrics.lock_timeouts);
  EXPECT_GT(metrics.lock_waits, 0u);
}

TEST(SystemTraceTest, DisabledByDefault) {
  SystemConfig config = TracedConfig(Protocol::kDagWt);
  config.enable_trace = false;
  auto system = System::Create(std::move(config));
  ASSERT_TRUE(system.ok());
  (*system)->Run();
  EXPECT_EQ((*system)->trace(), nullptr);
}

TEST(SystemTraceTest, MessageKindsVisibleInTrace) {
  auto system = System::Create(TracedConfig(Protocol::kBackEdge));
  ASSERT_TRUE(system.ok());
  System& sys = **system;
  sys.Run();
  std::set<std::string> kinds;
  for (const TraceEvent& e : sys.trace()->events()) {
    if (e.kind == TraceEvent::Kind::kMsgPost) kinds.insert(e.detail);
  }
  // A cyclic BackEdge run exercises both lazy and eager machinery.
  EXPECT_TRUE(kinds.count("secondary"));
  EXPECT_TRUE(kinds.count("backedge_start"));
  EXPECT_TRUE(kinds.count("special_secondary"));
  EXPECT_TRUE(kinds.count("2pc_prepare"));
}

}  // namespace
}  // namespace lazyrep::core
