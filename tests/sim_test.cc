// Tests for the discrete-event simulator core and synchronization
// primitives (src/sim). Everything here must be deterministic.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/co.h"
#include "sim/primitives.h"
#include "sim/simulator.h"

namespace lazyrep::sim {
namespace {

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
}

TEST(SimulatorTest, DelayAdvancesVirtualTime) {
  Simulator sim;
  SimTime observed = -1;
  sim.Spawn([](Simulator* s, SimTime* out) -> Co<void> {
    co_await s->Delay(Millis(5));
    *out = s->Now();
  }(&sim, &observed));
  sim.Run();
  EXPECT_EQ(observed, Millis(5));
}

TEST(SimulatorTest, ZeroDelayYieldsButDoesNotAdvanceTime) {
  Simulator sim;
  SimTime observed = -1;
  sim.Spawn([](Simulator* s, SimTime* out) -> Co<void> {
    co_await s->Delay(0);
    *out = s->Now();
  }(&sim, &observed));
  sim.Run();
  EXPECT_EQ(observed, 0);
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  auto proc = [](Simulator* s, std::vector<int>* ord, Duration d,
                 int tag) -> Co<void> {
    co_await s->Delay(d);
    ord->push_back(tag);
  };
  sim.Spawn(proc(&sim, &order, Millis(30), 3));
  sim.Spawn(proc(&sim, &order, Millis(10), 1));
  sim.Spawn(proc(&sim, &order, Millis(20), 2));
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, SameTimeEventsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  auto proc = [](Simulator* s, std::vector<int>* ord, int tag) -> Co<void> {
    co_await s->Delay(Millis(7));
    ord->push_back(tag);
  };
  for (int i = 0; i < 8; ++i) sim.Spawn(proc(&sim, &order, i));
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(SimulatorTest, SpawnRunsEagerlyUntilFirstSuspension) {
  Simulator sim;
  bool reached_before_delay = false;
  sim.Spawn([](Simulator* s, bool* flag) -> Co<void> {
    *flag = true;
    co_await s->Delay(1);
  }(&sim, &reached_before_delay));
  EXPECT_TRUE(reached_before_delay);  // Before Run().
  sim.Run();
}

TEST(SimulatorTest, NestedCoroutinesReturnValues) {
  Simulator sim;
  int result = 0;
  auto child = [](Simulator* s) -> Co<int> {
    co_await s->Delay(Millis(1));
    co_return 42;
  };
  sim.Spawn([](Simulator* s, auto childfn, int* out) -> Co<void> {
    int a = co_await childfn(s);
    int b = co_await childfn(s);
    *out = a + b;
  }(&sim, child, &result));
  sim.Run();
  EXPECT_EQ(result, 84);
  EXPECT_EQ(sim.Now(), Millis(2));
}

TEST(SimulatorTest, DeeplyNestedCoroutineChain) {
  Simulator sim;
  // Recursion through Co: each level delays 1us and adds one.
  struct Rec {
    static Co<int> Down(Simulator* s, int depth) {
      if (depth == 0) co_return 0;
      co_await s->Delay(Micros(1));
      int below = co_await Down(s, depth - 1);
      co_return below + 1;
    }
  };
  int result = -1;
  sim.Spawn([](Simulator* s, int* out) -> Co<void> {
    *out = co_await Rec::Down(s, 200);
  }(&sim, &result));
  sim.Run();
  EXPECT_EQ(result, 200);
  EXPECT_EQ(sim.Now(), Micros(200));
}

TEST(SimulatorTest, ScheduleCallbackFiresAtRequestedTime) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.ScheduleCallback(Millis(3), [&] { fired_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(fired_at, Millis(3));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  sim.Spawn([](Simulator* s, int* c) -> Co<void> {
    for (int i = 0; i < 100; ++i) {
      co_await s->Delay(Millis(1));
      ++*c;
    }
  }(&sim, &count));
  sim.RunUntil(Millis(10));
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sim.Now(), Millis(10));
  sim.RunUntil(Millis(25));
  EXPECT_EQ(count, 25);
}

TEST(SimulatorTest, StopHaltsTheLoop) {
  Simulator sim;
  int count = 0;
  sim.Spawn([](Simulator* s, int* c) -> Co<void> {
    for (;;) {
      co_await s->Delay(Millis(1));
      if (++*c == 5) s->Stop();
    }
  }(&sim, &count));
  sim.Run();
  EXPECT_EQ(count, 5);
}

TEST(SimulatorTest, ShutdownDestroysParkedProcessesWithoutLeaks) {
  // Run under ASAN/valgrind to detect leaks; structurally we check the
  // live-process accounting.
  Simulator sim;
  WaitQueue q(&sim);
  sim.Spawn([](WaitQueue* wq) -> Co<void> {
    co_await wq->Wait();  // Never notified.
  }(&q));
  sim.Run();
  EXPECT_EQ(sim.live_process_count(), 1u);
  sim.Shutdown();
  EXPECT_EQ(sim.live_process_count(), 0u);
}

TEST(SimulatorTest, ShutdownPreservesClockAndAcceptsNewWork) {
  // The documented reuse semantics: Shutdown tears down processes but
  // does NOT rewind time or the event sequence counter, so a reused
  // simulator keeps a monotonic clock.
  Simulator sim;
  sim.Spawn([](Simulator* s) -> Co<void> {
    co_await s->Delay(Millis(7));
  }(&sim));
  sim.Run();
  EXPECT_EQ(sim.Now(), Millis(7));
  sim.Shutdown();
  EXPECT_EQ(sim.Now(), Millis(7));  // Time survives Shutdown.
  // New work is accepted and runs relative to the surviving clock.
  SimTime fired_at = -1;
  sim.Spawn([](Simulator* s, SimTime* out) -> Co<void> {
    co_await s->Delay(Millis(3));
    *out = s->Now();
  }(&sim, &fired_at));
  sim.Run();
  EXPECT_EQ(fired_at, Millis(10));
}

TEST(SimulatorTest, ResetRewindsClockForReuse) {
  // Reset = Shutdown + zeroed clock/sequence/counters: what a sweep
  // helper needs between independent runs on one simulator.
  Simulator sim;
  WaitQueue q(&sim);
  sim.Spawn([](Simulator* s, WaitQueue* wq) -> Co<void> {
    co_await s->Delay(Millis(2));
    co_await wq->Wait();  // Parked forever; Reset must reap it.
  }(&sim, &q));
  sim.Run();
  EXPECT_EQ(sim.Now(), Millis(2));
  EXPECT_EQ(sim.live_process_count(), 1u);
  sim.Reset();
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_EQ(sim.live_process_count(), 0u);
  EXPECT_EQ(sim.events_processed(), 0u);
  SimTime fired_at = -1;
  sim.Spawn([](Simulator* s, SimTime* out) -> Co<void> {
    co_await s->Delay(Millis(5));
    *out = s->Now();
  }(&sim, &fired_at));
  sim.Run();
  EXPECT_EQ(fired_at, Millis(5));  // Fresh timeline.
}

TEST(SimulatorTest, CompletedProcessesAreReaped) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) {
    sim.Spawn([](Simulator* s) -> Co<void> {
      co_await s->Delay(1);
    }(&sim));
  }
  EXPECT_EQ(sim.live_process_count(), 10u);
  sim.Run();
  EXPECT_EQ(sim.live_process_count(), 0u);
}

TEST(WaitQueueTest, NotifyOneWakesInFifoOrder) {
  Simulator sim;
  WaitQueue q(&sim);
  std::vector<int> order;
  auto waiter = [](WaitQueue* wq, std::vector<int>* ord, int tag)
      -> Co<void> {
    co_await wq->Wait();
    ord->push_back(tag);
  };
  sim.Spawn(waiter(&q, &order, 1));
  sim.Spawn(waiter(&q, &order, 2));
  sim.Spawn(waiter(&q, &order, 3));
  EXPECT_EQ(q.waiter_count(), 3u);
  q.NotifyOne();
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  q.NotifyAll();
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventTest, WaitersProceedAfterSet) {
  Simulator sim;
  Event ev(&sim);
  int done = 0;
  auto waiter = [](Event* e, int* d) -> Co<void> {
    co_await e->Wait();
    ++*d;
  };
  sim.Spawn(waiter(&ev, &done));
  sim.Spawn(waiter(&ev, &done));
  sim.Run();
  EXPECT_EQ(done, 0);
  ev.Set();
  sim.Run();
  EXPECT_EQ(done, 2);
  // A late waiter does not block at all.
  sim.Spawn(waiter(&ev, &done));
  sim.Run();
  EXPECT_EQ(done, 3);
}

TEST(OneShotTest, FirstFireWins) {
  Simulator sim;
  OneShot<std::string> cell(&sim);
  EXPECT_TRUE(cell.TryFire("first"));
  EXPECT_FALSE(cell.TryFire("second"));
  std::string got;
  sim.Spawn([](OneShot<std::string>* c, std::string* out) -> Co<void> {
    *out = co_await c->Wait();
  }(&cell, &got));
  sim.Run();
  EXPECT_EQ(got, "first");
}

TEST(OneShotTest, WaiterParksUntilFired) {
  Simulator sim;
  OneShot<int> cell(&sim);
  int got = 0;
  sim.Spawn([](OneShot<int>* c, int* out) -> Co<void> {
    *out = co_await c->Wait();
  }(&cell, &got));
  sim.Run();
  EXPECT_EQ(got, 0);
  cell.TryFire(7);
  sim.Run();
  EXPECT_EQ(got, 7);
}

TEST(WaitGroupTest, WaitReturnsWhenAllDone) {
  Simulator sim;
  WaitGroup wg(&sim);
  bool finished = false;
  wg.Add(3);
  auto worker = [](Simulator* s, WaitGroup* g, Duration d) -> Co<void> {
    co_await s->Delay(d);
    g->Done();
  };
  sim.Spawn(worker(&sim, &wg, Millis(1)));
  sim.Spawn(worker(&sim, &wg, Millis(5)));
  sim.Spawn(worker(&sim, &wg, Millis(3)));
  sim.Spawn([](WaitGroup* g, bool* f) -> Co<void> {
    co_await g->Wait();
    *f = true;
  }(&wg, &finished));
  sim.Run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(sim.Now(), Millis(5));
}

TEST(MailboxTest, FifoDelivery) {
  Simulator sim;
  Mailbox<int> mb(&sim);
  std::vector<int> received;
  sim.Spawn([](Mailbox<int>* m, std::vector<int>* out) -> Co<void> {
    for (int i = 0; i < 3; ++i) out->push_back(co_await m->Receive());
  }(&mb, &received));
  mb.Send(10);
  mb.Send(20);
  mb.Send(30);
  sim.Run();
  EXPECT_EQ(received, (std::vector<int>{10, 20, 30}));
  EXPECT_EQ(mb.total_sent(), 3u);
}

TEST(MailboxTest, ReceiverBlocksUntilSend) {
  Simulator sim;
  Mailbox<int> mb(&sim);
  int got = -1;
  sim.Spawn([](Mailbox<int>* m, int* out) -> Co<void> {
    *out = co_await m->Receive();
  }(&mb, &got));
  sim.Run();
  EXPECT_EQ(got, -1);
  mb.Send(99);
  sim.Run();
  EXPECT_EQ(got, 99);
}

TEST(MailboxTest, WaitNonEmptyAllowsPeekingWithoutPop) {
  Simulator sim;
  Mailbox<int> mb(&sim);
  int peeked = -1;
  sim.Spawn([](Mailbox<int>* m, int* out) -> Co<void> {
    co_await m->WaitNonEmpty();
    *out = m->Front();
  }(&mb, &peeked));
  mb.Send(5);
  sim.Run();
  EXPECT_EQ(peeked, 5);
  EXPECT_EQ(mb.size(), 1u);  // Not popped.
}

TEST(ResourceTest, SerializesWorkFcfs) {
  Simulator sim;
  Resource cpu(&sim, 1);
  std::vector<std::pair<int, SimTime>> completions;
  auto job = [](Simulator* s, Resource* r,
                std::vector<std::pair<int, SimTime>>* out,
                int tag) -> Co<void> {
    co_await r->Consume(Millis(10));
    out->push_back({tag, s->Now()});
  };
  sim.Spawn(job(&sim, &cpu, &completions, 1));
  sim.Spawn(job(&sim, &cpu, &completions, 2));
  sim.Spawn(job(&sim, &cpu, &completions, 3));
  sim.Run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], (std::pair<int, SimTime>{1, Millis(10)}));
  EXPECT_EQ(completions[1], (std::pair<int, SimTime>{2, Millis(20)}));
  EXPECT_EQ(completions[2], (std::pair<int, SimTime>{3, Millis(30)}));
  EXPECT_EQ(cpu.busy_time(), Millis(30));
}

TEST(ResourceTest, CapacityTwoRunsTwoJobsInParallel) {
  Simulator sim;
  Resource cpu(&sim, 2);
  int done = 0;
  auto job = [](Resource* r, int* d) -> Co<void> {
    co_await r->Consume(Millis(10));
    ++*d;
  };
  sim.Spawn(job(&cpu, &done));
  sim.Spawn(job(&cpu, &done));
  sim.Spawn(job(&cpu, &done));
  sim.Run();
  EXPECT_EQ(done, 3);
  // Two run in [0,10), third in [10,20).
  EXPECT_EQ(sim.Now(), Millis(20));
}

TEST(ResourceTest, ReleaseTransfersDirectlyToWaiter) {
  Simulator sim;
  Resource r(&sim, 1);
  std::vector<int> order;
  auto holder = [](Simulator* s, Resource* res,
                   std::vector<int>* ord) -> Co<void> {
    co_await res->Acquire();
    ord->push_back(1);
    co_await s->Delay(Millis(1));
    res->Release();
    ord->push_back(2);
  };
  auto waiter = [](Resource* res, std::vector<int>* ord) -> Co<void> {
    co_await res->Acquire();
    ord->push_back(3);
    res->Release();
  };
  sim.Spawn(holder(&sim, &r, &order));
  sim.Spawn(waiter(&r, &order));
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(r.available(), 1);
}

TEST(DeterminismTest, IdenticalRunsProduceIdenticalTraces) {
  auto run_once = [] {
    Simulator sim;
    std::vector<std::pair<int, SimTime>> trace;
    Mailbox<int> mb(&sim);
    Resource cpu(&sim, 1);
    for (int i = 0; i < 5; ++i) {
      sim.Spawn([](Simulator* s, Mailbox<int>* m, Resource* r,
                   std::vector<std::pair<int, SimTime>>* t,
                   int tag) -> Co<void> {
        co_await s->Delay(Micros(tag * 13 % 7));
        co_await r->Consume(Micros(100));
        m->Send(tag);
        t->push_back({tag, s->Now()});
      }(&sim, &mb, &cpu, &trace, i));
    }
    sim.Run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace lazyrep::sim
