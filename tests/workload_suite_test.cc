// System-level tests for the standard-benchmark workload suite
// (docs/WORKLOADS.md): YCSB-A, SmallBank and TPC-C-lite running under
// the real protocols, on both runtimes.
//
//  - Full-stack sweep: three lazy protocols × {sim, threads with four
//    worker lanes} × the three new generators stay serializable,
//    read-consistent and convergent, and every site's WAL replays to
//    exactly its final store. Skew is on (θ=0.8) so the global-hot-rank
//    samplers are exercised end to end.
//  - Sim determinism: same seed, same metrics, workload suite on.
//  - PSL and the eager baseline accept the new workloads too.

#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/system.h"
#include "harness/experiment.h"
#include "storage/item_store.h"
#include "storage/wal.h"
#include "workload/params.h"

namespace lazyrep {
namespace {

using core::Protocol;
using runtime::RuntimeKind;
using workload::WorkloadKind;

// See the dilation note in fault_test.cc: the threads tier is paced in
// real time and TSan slows the executors ~10x.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) && !defined(__SANITIZE_THREAD__)
#define __SANITIZE_THREAD__ 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
constexpr int64_t kTimeDilation = 10;
#else
constexpr int64_t kTimeDilation = 1;
#endif

core::SystemConfig SuiteConfig(Protocol protocol, WorkloadKind kind,
                               RuntimeKind runtime, uint64_t seed,
                               int workers = 1) {
  core::SystemConfig config = harness::PaperConfig(protocol);
  config.runtime = runtime;
  config.seed = seed;
  config.workers_per_site = workers;
  config.enable_wal = true;
  config.workload.workload = kind;
  config.workload.zipf_theta = 0.8;
  if (protocol != Protocol::kBackEdge) {
    config.workload.backedge_prob = 0.0;  // DAG protocols need a DAG.
  }
  if (runtime == RuntimeKind::kSim) {
    config.workload.txns_per_thread = 40;
  } else {
    const int64_t d = kTimeDilation;
    config.workload.txns_per_thread = 10;
    config.workload.deadlock_timeout *= d;
    config.engine.epoch_period *= d;
    config.engine.dummy_period *= d;
  }
  return config;
}

void RunSuite(core::SystemConfig config) {
  auto system = core::System::Create(std::move(config));
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  core::System& sys = **system;
  core::RunMetrics m = sys.Run();

  EXPECT_FALSE(m.timed_out);
  EXPECT_GT(m.committed, 0);
  EXPECT_TRUE(m.serializable) << m.verdict;
  EXPECT_TRUE(m.reads_consistent);
  EXPECT_TRUE(m.converged);

  // Redo recovery reproduces every site's final image under the new
  // write shapes (RMWs, account transfers, order lines).
  const int num_sites = sys.config().workload.num_sites;
  for (SiteId s = 0; s < num_sites; ++s) {
    storage::Database& db = sys.database(s);
    ASSERT_NE(db.wal(), nullptr);
    storage::ItemStore replayed;
    for (const auto& [item, value] : db.store().Snapshot()) {
      replayed.AddItem(item, 0);
    }
    db.wal()->Replay(&replayed);
    EXPECT_EQ(replayed.Snapshot(), db.store().Snapshot())
        << "WAL replay diverged from the live store at site " << s;
  }
}

class WorkloadSuiteSweep
    : public ::testing::TestWithParam<
          std::tuple<Protocol, RuntimeKind, WorkloadKind>> {};

TEST_P(WorkloadSuiteSweep, SerializableConvergedAndRecoverable) {
  auto [protocol, runtime, kind] = GetParam();
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const int workers = runtime == RuntimeKind::kThreads ? 4 : 1;
    RunSuite(SuiteConfig(protocol, kind, runtime, seed, workers));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

std::string SweepParamName(
    const ::testing::TestParamInfo<
        std::tuple<Protocol, RuntimeKind, WorkloadKind>>& info) {
  std::string name;
  switch (std::get<0>(info.param)) {
    case Protocol::kDagWt: name = "DagWt"; break;
    case Protocol::kDagT: name = "DagT"; break;
    case Protocol::kBackEdge: name = "BackEdge"; break;
    default: name = "Other"; break;
  }
  name += std::get<1>(info.param) == RuntimeKind::kSim ? "_Sim"
                                                       : "_ThreadsWorkers4";
  switch (std::get<2>(info.param)) {
    case WorkloadKind::kYcsbA: name += "_YcsbA"; break;
    case WorkloadKind::kSmallBank: name += "_SmallBank"; break;
    case WorkloadKind::kTpccLite: name += "_TpccLite"; break;
    default: name += "_Other"; break;
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, WorkloadSuiteSweep,
    ::testing::Combine(::testing::Values(Protocol::kDagWt, Protocol::kDagT,
                                         Protocol::kBackEdge),
                       ::testing::Values(RuntimeKind::kSim,
                                         RuntimeKind::kThreads),
                       ::testing::Values(WorkloadKind::kYcsbA,
                                         WorkloadKind::kSmallBank,
                                         WorkloadKind::kTpccLite)),
    SweepParamName);

// The two non-tree baselines run the suite as well: PSL proxies remote
// reads at the primary, the eager engine write-locks all copies.
TEST(WorkloadSuiteBaselines, PslAndEagerRunEveryGenerator) {
  for (Protocol protocol : {Protocol::kPsl, Protocol::kEager}) {
    for (WorkloadKind kind : {WorkloadKind::kYcsbA, WorkloadKind::kSmallBank,
                              WorkloadKind::kTpccLite}) {
      SCOPED_TRACE(workload::WorkloadKindName(kind));
      RunSuite(SuiteConfig(protocol, kind, RuntimeKind::kSim, 3));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// Determinism: the suite generators draw from the same per-thread rngs,
// so a fixed seed reproduces identical metrics on the sim backend.
TEST(WorkloadSuiteDeterminism, SameSeedSameMetrics) {
  for (WorkloadKind kind : {WorkloadKind::kYcsbA, WorkloadKind::kSmallBank,
                            WorkloadKind::kTpccLite}) {
    SCOPED_TRACE(workload::WorkloadKindName(kind));
    auto run = [&](uint64_t seed) {
      auto system = core::System::Create(
          SuiteConfig(Protocol::kDagWt, kind, RuntimeKind::kSim, seed));
      EXPECT_TRUE(system.ok());
      return (*system)->Run();
    };
    core::RunMetrics a = run(7);
    core::RunMetrics b = run(7);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.aborted, b.aborted);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.avg_site_throughput, b.avg_site_throughput);
  }
}

}  // namespace
}  // namespace lazyrep
