// lazychk — schedule-exploration checker (docs/CHECKING.md).
//
// Sweeps seeded schedule perturbations (event tie-breaks, delivery
// jitter, lock-grant order) over deterministic sim runs and checks the
// paper's invariants at quiescence: serializability, read consistency,
// replica convergence, WAL-replay-equals-store, fault quiescence.
//
//   $ lazychk --protocol=dagt --seeds=200 --shrink
//   $ lazychk --protocol=backedge --seeds=500
//             --faults=drop:0.01,dup:0.01,crash:2@500ms+100ms
//
// Every violation prints a (seed, policy) pair and the exact CLI line
// that replays it. Exit status: 0 clean, 1 violations found, 2 usage.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fault/fault_plan.h"
#include "graph/topology.h"
#include "harness/lazychk.h"

using namespace lazyrep;

namespace {

void PrintHelp() {
  std::printf(
      "lazychk — schedule-exploration checker over the sim runtime\n"
      "\n"
      "  --protocol=NAME   dagwt | dagt | backedge | psl | naive | eager\n"
      "                    (dag_wt / dag_t accepted too; default dagt)\n"
      "  --seeds=N         number of (seed, policy) runs (default 100)\n"
      "  --first-seed=K    first seed of the sweep (default 1)\n"
      "  --txns=K          transactions per thread per run (default 40)\n"
      "  --workload=NAME   generator under test: table1 | ycsb_a..ycsb_f |\n"
      "                    smallbank | tpcc_lite (docs/WORKLOADS.md;\n"
      "                    default table1)\n"
      "  --zipf=THETA      access-skew exponent over global hotness ranks\n"
      "                    (default 0 = uniform)\n"
      "  --consistency=L   serializable | snapshot | ryw: read-only txns\n"
      "                    use lock-free MVCC snapshots under the relaxed\n"
      "                    levels and the oracle adds the snapshot-\n"
      "                    consistency check (default serializable;\n"
      "                    docs/MVCC.md)\n"
      "  --faults=SPEC     fault plan, e.g. drop:0.01,dup:0.01,\n"
      "                    crash:2@500ms+100ms (docs/FAULTS.md)\n"
      "  --topology=SPEC   generated scale-out copy graph with sharded\n"
      "                    placement: chain:N | tree:N,d | fan:N |\n"
      "                    rand:N,density (docs/SCALE.md). rand density\n"
      "                    > 0 creates cycles: non-DAG protocols only\n"
      "  --replication-factor=K\n"
      "                    copies per item under --topology (default 2)\n"
      "  --ties=0|1        perturb same-timestamp tie-breaks (default 1)\n"
      "  --grants=0|1      randomize lock-grant order (default 1)\n"
      "  --grant=KIND      deadlock policy under test: timeout | wait_die\n"
      "                    (wait_die forces --grants=0; default timeout)\n"
      "  --jitter=D        max per-message delivery jitter, e.g. 2ms,\n"
      "                    500us, 0 (default 2ms)\n"
      "  --batch-window=D  route every run through the coalescing\n"
      "                    transport with this flush window, e.g. 2ms\n"
      "                    (default 0 = batching off;\n"
      "                    docs/PERFORMANCE.md §6)\n"
      "  --piggyback-acks  carry cumulative acks on reverse data frames\n"
      "  --group-commit    one WAL sync boundary per delivered batch\n"
      "  --shrink          shrink each violation to a minimal policy\n"
      "                    (default on; --no-shrink disables)\n"
      "  --quiet           suppress per-violation progress on stderr\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

Result<core::Protocol> ParseProtocol(const std::string& name) {
  if (name == "dagwt" || name == "dag_wt") return core::Protocol::kDagWt;
  if (name == "dagt" || name == "dag_t") return core::Protocol::kDagT;
  if (name == "backedge") return core::Protocol::kBackEdge;
  if (name == "psl") return core::Protocol::kPsl;
  if (name == "naive") return core::Protocol::kNaiveLazy;
  if (name == "eager") return core::Protocol::kEager;
  return Status::InvalidArgument("unknown protocol: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  harness::LazychkOptions options;
  options.verbose = true;
  std::string v;
  bool grants_explicit = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintHelp();
      return 0;
    } else if (ParseFlag(arg, "--protocol", &v)) {
      Result<core::Protocol> protocol = ParseProtocol(v);
      if (!protocol.ok()) {
        std::fprintf(stderr, "%s\n", protocol.status().ToString().c_str());
        return 2;
      }
      options.protocol = *protocol;
    } else if (ParseFlag(arg, "--seeds", &v)) {
      options.seeds = std::atoi(v.c_str());
      if (options.seeds <= 0) {
        std::fprintf(stderr, "--seeds must be positive\n");
        return 2;
      }
    } else if (ParseFlag(arg, "--first-seed", &v)) {
      options.first_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "--txns", &v)) {
      options.txns_per_thread = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "--workload", &v)) {
      Result<workload::WorkloadKind> kind = workload::ParseWorkloadKind(v);
      if (!kind.ok()) {
        std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
        return 2;
      }
      options.workload = *kind;
    } else if (ParseFlag(arg, "--zipf", &v)) {
      options.zipf_theta = std::atof(v.c_str());
      if (options.zipf_theta < 0) {
        std::fprintf(stderr, "--zipf must be >= 0\n");
        return 2;
      }
    } else if (ParseFlag(arg, "--consistency", &v)) {
      Result<storage::ConsistencyLevel> level =
          storage::ParseConsistencyLevel(v);
      if (!level.ok()) {
        std::fprintf(stderr, "%s\n", level.status().ToString().c_str());
        return 2;
      }
      options.consistency = *level;
    } else if (ParseFlag(arg, "--faults", &v)) {
      // Validate up front so a typo fails with exit 2, not a CHECK.
      Result<fault::FaultPlan> plan = fault::FaultPlan::Parse(v);
      if (!plan.ok()) {
        std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
        return 2;
      }
      options.faults = v;
    } else if (ParseFlag(arg, "--topology", &v)) {
      Result<graph::TopologySpec> spec = graph::ParseTopologySpec(v);
      if (!spec.ok()) {
        std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
        return 2;
      }
      options.topology = spec->ToString();
    } else if (ParseFlag(arg, "--replication-factor", &v)) {
      options.replication_factor = std::atoi(v.c_str());
      if (options.replication_factor < 1) {
        std::fprintf(stderr, "--replication-factor must be >= 1\n");
        return 2;
      }
    } else if (ParseFlag(arg, "--ties", &v)) {
      options.policy.perturb_ties = std::atoi(v.c_str()) != 0;
    } else if (ParseFlag(arg, "--grants", &v)) {
      options.policy.shuffle_grants = std::atoi(v.c_str()) != 0;
      grants_explicit = true;
    } else if (ParseFlag(arg, "--grant", &v)) {
      if (v == "timeout") {
        options.deadlock_policy = storage::DeadlockPolicy::kTimeoutOnly;
      } else if (v == "wait_die" || v == "wait-die") {
        options.deadlock_policy = storage::DeadlockPolicy::kWaitDie;
      } else {
        std::fprintf(stderr, "unknown --grant value '%s' "
                             "(timeout|wait_die)\n", v.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "--jitter", &v)) {
      Result<Duration> jitter = fault::internal::ParseDuration(v);
      if (!jitter.ok() || *jitter < 0) {
        std::fprintf(stderr, "bad --jitter value: %s\n", v.c_str());
        return 2;
      }
      options.policy.delivery_jitter_max = *jitter;
    } else if (ParseFlag(arg, "--batch-window", &v)) {
      Result<Duration> window = fault::internal::ParseDuration(v);
      if (!window.ok() || *window < 0) {
        std::fprintf(stderr, "bad --batch-window value: %s\n", v.c_str());
        return 2;
      }
      options.batching.window = *window;
    } else if (std::strcmp(arg, "--piggyback-acks") == 0) {
      options.batching.piggyback_acks = true;
    } else if (std::strcmp(arg, "--group-commit") == 0) {
      options.batching.wal_group_commit = true;
    } else if (std::strcmp(arg, "--shrink") == 0) {
      options.shrink = true;
    } else if (std::strcmp(arg, "--no-shrink") == 0) {
      options.shrink = false;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      options.verbose = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg);
      return 2;
    }
  }

  if (options.deadlock_policy == storage::DeadlockPolicy::kWaitDie &&
      grants_explicit && options.policy.shuffle_grants) {
    std::fprintf(stderr,
                 "--grant=wait_die does not compose with --grants=1: "
                 "wait-die decides grant order by transaction age\n");
    return 2;
  }

  int last_pct = -1;
  if (options.verbose) {
    options.on_progress = [&last_pct](int done, int total) {
      int pct = 100 * done / total;
      if (pct / 10 > last_pct / 10) {
        std::fprintf(stderr, "lazychk: %d/%d runs\n", done, total);
        last_pct = pct;
      }
    };
  }

  harness::LazychkResult result = harness::RunLazychk(options);
  std::printf("lazychk: %d runs, %zu violation(s)\n", result.runs,
              result.violations.size());
  for (const harness::LazychkViolation& violation : result.violations) {
    std::printf("  seed=%llu policy=[%s]\n    %s\n    replay: %s\n",
                static_cast<unsigned long long>(violation.seed),
                violation.policy.ToString().c_str(), violation.what.c_str(),
                violation.replay.c_str());
  }
  return result.ok() ? 0 : 1;
}
