// lazyrep_cli — run one simulated experiment from command-line flags and
// print the paper's metrics. The flag names mirror Table 1.
//
//   $ lazyrep_cli --protocol=backedge --sites=9 --items=200 --r=0.2
//                 --b=0.2 --threads=3 --txns=1000 --seed=1   (one line)
//
// Run with --help for the full list.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/system.h"
#include "fault/fault_plan.h"
#include "graph/topology.h"
#include "harness/experiment.h"
#include "obs/chrome_trace.h"
#include "obs/prometheus.h"

using namespace lazyrep;

namespace {

void PrintHelp() {
  std::printf(
      "lazyrep_cli — Breitbart et al. (SIGMOD 1999) replication simulator\n"
      "\n"
      "  --protocol=NAME   dagwt | dagt | backedge | psl | naive | eager\n"
      "                    (default backedge)\n"
      "  --sites=M         number of sites (default 9)\n"
      "  --per-machine=K   sites per machine sharing a CPU (default 3)\n"
      "  --items=N         number of items (default 200)\n"
      "  --r=P             replication probability (default 0.2)\n"
      "  --s=P             site probability (default 0.5)\n"
      "  --b=P             backedge probability (default 0.2)\n"
      "  --ops=K           operations per transaction (default 10)\n"
      "  --threads=K       threads per site (default 3)\n"
      "  --txns=K          transactions per thread (default 1000)\n"
      "  --read-op=P       read-operation probability (default 0.7)\n"
      "  --read-txn=P      read-only-transaction probability (default 0.5)\n"
      "  --workload=NAME   table1 | ycsb_a..ycsb_f | smallbank | tpcc_lite\n"
      "                    (docs/WORKLOADS.md; default table1)\n"
      "  --zipf=THETA      access-skew exponent over one global hotness\n"
      "                    permutation (default 0 = uniform)\n"
      "  --consistency=L   serializable | snapshot | ryw (default\n"
      "                    serializable): the relaxed levels serve\n"
      "                    read-only transactions lock-free from MVCC\n"
      "                    snapshots at the site watermark; ryw adds\n"
      "                    read-your-writes session floors (docs/MVCC.md)\n"
      "  --hot-seed=K      seed of the hotness permutation (default 1)\n"
      "  --scan-len=K      YCSB-E max scan length (default 8)\n"
      "  --remote=P        tpcc_lite multi-partition probability\n"
      "                    (default 0.1)\n"
      "  --topology=SPEC   generated scale-out copy graph with per-item\n"
      "                    sharded placement (docs/SCALE.md): chain:N |\n"
      "                    tree:N,d | fan:N | rand:N,density. Overrides\n"
      "                    --sites; rand density > 0 creates cycles and\n"
      "                    needs --protocol=backedge/psl/naive/eager\n"
      "  --replication-factor=K\n"
      "                    copies per item (primary included) under\n"
      "                    --topology (default 2)\n"
      "  --latency-ms=X    one-way network latency (default 0.15)\n"
      "  --timeout-ms=X    deadlock lock-wait timeout (default 50)\n"
      "  --seed=K          experiment seed (default 1)\n"
      "  --seeds=K         average over K seeds (default 1)\n"
      "  --runtime=KIND    sim | threads (default sim). sim is the\n"
      "                    deterministic discrete-event backend; threads\n"
      "                    runs each machine on an OS thread and reports\n"
      "                    measured wall-clock metrics\n"
      "  --workers=N       worker lanes per machine (threads runtime\n"
      "                    only; default 1). A site's transactions spread\n"
      "                    over its machine's lanes\n"
      "  --lock-stripes=N  hash stripes per site lock table (default 8)\n"
      "  --deadlock=KIND   timeout | wait_die (default timeout): abort a\n"
      "                    lock waiter only on timeout, or also kill any\n"
      "                    younger requester that would wait on an older\n"
      "                    holder (wait-die prevention)\n"
      "  --lock-timeout=X  alias for --timeout-ms\n"
      "  --retry           retry aborted transactions until they commit\n"
      "  --tree=KIND       chain | greedy (default chain)\n"
      "  --backedges=M     site-order | dfs | greedy | weighted\n"
      "  --detection       waits-for deadlock detection (default timeout)\n"
      "  --lww             last-writer-wins reconciliation (naive only)\n"
      "  --wal             maintain per-site redo WALs\n"
      "  --faults=SPEC     fault plan, e.g. drop:0.01,dup:0.01,\n"
      "                    delay:2ms,crash:1@500ms+100ms (docs/FAULTS.md;\n"
      "                    crash faults imply --wal)\n"
      "  --batch-window=X  coalesce posts per channel for X ms and ship\n"
      "                    them as one batch frame (default 0 = off;\n"
      "                    docs/PERFORMANCE.md §6)\n"
      "  --batch-bytes=N   size threshold that flushes a channel's batch\n"
      "                    buffer early (default 16384)\n"
      "  --piggyback-acks  carry cumulative acks on reverse-direction\n"
      "                    data frames instead of standalone ChannelAcks\n"
      "  --group-commit    one WAL sync boundary per delivered batch at\n"
      "                    the secondaries (implies --wal)\n"
      "  --no-check        skip history recording / serializability check\n"
      "  --trace=FILE      write a JSONL protocol event trace (single run)\n"
      "  --metrics-out=F   write a Prometheus text metrics snapshot taken\n"
      "                    at quiescence (single run)\n"
      "  --trace-out=F     write a Chrome trace_event JSON timeline (load\n"
      "                    in Perfetto / chrome://tracing; implies\n"
      "                    tracing; single run)\n"
      "  --warmup-ms=X     exclude transactions starting before X ms\n"
      "  --per-site        print the per-site breakdown (single run)\n"
      "  --hist            print the response-time histogram (single run)\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

Result<core::Protocol> ParseProtocol(const std::string& name) {
  if (name == "dagwt") return core::Protocol::kDagWt;
  if (name == "dagt") return core::Protocol::kDagT;
  if (name == "backedge") return core::Protocol::kBackEdge;
  if (name == "psl") return core::Protocol::kPsl;
  if (name == "naive") return core::Protocol::kNaiveLazy;
  if (name == "eager") return core::Protocol::kEager;
  return Status::InvalidArgument("unknown protocol: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  core::SystemConfig config = harness::PaperConfig(core::Protocol::kBackEdge);
  int seeds = 1;
  bool per_site = false;
  bool histogram = false;
  std::string trace_path;
  std::string metrics_out;
  std::string trace_out;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintHelp();
      return 0;
    } else if (ParseFlag(arg, "--protocol", &v)) {
      Result<core::Protocol> protocol = ParseProtocol(v);
      if (!protocol.ok()) {
        std::fprintf(stderr, "%s\n", protocol.status().ToString().c_str());
        return 2;
      }
      config.protocol = *protocol;
    } else if (ParseFlag(arg, "--sites", &v)) {
      config.workload.num_sites = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "--per-machine", &v)) {
      config.workload.sites_per_machine = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "--items", &v)) {
      config.workload.num_items = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "--r", &v)) {
      config.workload.replication_prob = std::atof(v.c_str());
    } else if (ParseFlag(arg, "--s", &v)) {
      config.workload.site_prob = std::atof(v.c_str());
    } else if (ParseFlag(arg, "--b", &v)) {
      config.workload.backedge_prob = std::atof(v.c_str());
    } else if (ParseFlag(arg, "--ops", &v)) {
      config.workload.ops_per_txn = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "--threads", &v)) {
      config.workload.threads_per_site = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "--txns", &v)) {
      config.workload.txns_per_thread = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "--read-op", &v)) {
      config.workload.read_op_prob = std::atof(v.c_str());
    } else if (ParseFlag(arg, "--read-txn", &v)) {
      config.workload.read_txn_prob = std::atof(v.c_str());
    } else if (ParseFlag(arg, "--workload", &v)) {
      Result<workload::WorkloadKind> kind = workload::ParseWorkloadKind(v);
      if (!kind.ok()) {
        std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
        return 2;
      }
      config.workload.workload = *kind;
    } else if (ParseFlag(arg, "--zipf", &v)) {
      config.workload.zipf_theta = std::atof(v.c_str());
      if (config.workload.zipf_theta < 0) {
        std::fprintf(stderr, "--zipf must be >= 0\n");
        return 2;
      }
    } else if (ParseFlag(arg, "--consistency", &v)) {
      Result<storage::ConsistencyLevel> level =
          storage::ParseConsistencyLevel(v);
      if (!level.ok()) {
        std::fprintf(stderr, "%s\n", level.status().ToString().c_str());
        return 2;
      }
      config.consistency = *level;
    } else if (ParseFlag(arg, "--topology", &v)) {
      Result<graph::TopologySpec> spec = graph::ParseTopologySpec(v);
      if (!spec.ok()) {
        std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
        return 2;
      }
      harness::ApplyTopology(v, /*replication_factor=*/0,
                             &config.workload);
    } else if (ParseFlag(arg, "--replication-factor", &v)) {
      config.workload.replication_factor = std::atoi(v.c_str());
      if (config.workload.replication_factor < 1) {
        std::fprintf(stderr, "--replication-factor must be >= 1\n");
        return 2;
      }
    } else if (ParseFlag(arg, "--hot-seed", &v)) {
      config.workload.hot_rank_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "--scan-len", &v)) {
      config.workload.ycsb_scan_len = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "--remote", &v)) {
      config.workload.remote_txn_prob = std::atof(v.c_str());
    } else if (ParseFlag(arg, "--latency-ms", &v)) {
      config.workload.network_latency = Millis(std::atof(v.c_str()));
    } else if (ParseFlag(arg, "--timeout-ms", &v) ||
               ParseFlag(arg, "--lock-timeout", &v)) {
      config.workload.deadlock_timeout = Millis(std::atof(v.c_str()));
    } else if (ParseFlag(arg, "--workers", &v)) {
      config.workers_per_site = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "--lock-stripes", &v)) {
      config.engine.lock_stripes = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "--deadlock", &v)) {
      if (v == "timeout") {
        config.engine.deadlock_policy = storage::DeadlockPolicy::kTimeoutOnly;
      } else if (v == "wait_die" || v == "wait-die") {
        config.engine.deadlock_policy = storage::DeadlockPolicy::kWaitDie;
      } else {
        std::fprintf(stderr, "unknown deadlock policy '%s' "
                             "(timeout|wait_die)\n", v.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "--seed", &v)) {
      config.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "--seeds", &v)) {
      seeds = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "--runtime", &v)) {
      if (v == "sim") {
        config.runtime = runtime::RuntimeKind::kSim;
      } else if (v == "threads") {
        config.runtime = runtime::RuntimeKind::kThreads;
      } else {
        std::fprintf(stderr, "unknown runtime '%s' (sim|threads)\n",
                     v.c_str());
        return 2;
      }
    } else if (std::strcmp(arg, "--retry") == 0) {
      config.retry = core::RetryPolicy::kRetryUntilCommit;
    } else if (ParseFlag(arg, "--tree", &v)) {
      config.engine.tree =
          v == "greedy" ? core::TreeKind::kGreedy : core::TreeKind::kChain;
    } else if (ParseFlag(arg, "--backedges", &v)) {
      if (v == "dfs") {
        config.engine.backedge_method = core::BackedgeMethod::kDfs;
      } else if (v == "greedy") {
        config.engine.backedge_method = core::BackedgeMethod::kGreedy;
      } else if (v == "weighted") {
        config.engine.backedge_method =
            core::BackedgeMethod::kWeightedGreedy;
      } else {
        config.engine.backedge_method = core::BackedgeMethod::kSiteOrder;
      }
    } else if (std::strcmp(arg, "--detection") == 0) {
      config.engine.deadlock_policy =
          storage::DeadlockPolicy::kLocalDetection;
    } else if (std::strcmp(arg, "--lww") == 0) {
      config.engine.naive_lww = true;
    } else if (std::strcmp(arg, "--wal") == 0) {
      config.enable_wal = true;
    } else if (ParseFlag(arg, "--faults", &v)) {
      Result<fault::FaultPlan> plan = fault::FaultPlan::Parse(v);
      if (!plan.ok()) {
        std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
        return 2;
      }
      config.faults = *plan;
      // Crash recovery replays the WAL; switch it on rather than make
      // the user pair the flags by hand.
      if (!plan->crashes.empty()) config.enable_wal = true;
    } else if (ParseFlag(arg, "--batch-window", &v)) {
      config.batching.window = Millis(std::atof(v.c_str()));
    } else if (ParseFlag(arg, "--batch-bytes", &v)) {
      config.batching.max_bytes =
          static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (std::strcmp(arg, "--piggyback-acks") == 0) {
      config.batching.piggyback_acks = true;
    } else if (std::strcmp(arg, "--group-commit") == 0) {
      config.batching.wal_group_commit = true;
      config.enable_wal = true;  // The boundary needs a log to seal.
    } else if (std::strcmp(arg, "--no-check") == 0) {
      config.check_serializability = false;
    } else if (ParseFlag(arg, "--trace", &v)) {
      trace_path = v;
      config.enable_trace = true;
    } else if (ParseFlag(arg, "--metrics-out", &v)) {
      metrics_out = v;
    } else if (ParseFlag(arg, "--trace-out", &v)) {
      trace_out = v;
      config.enable_trace = true;
    } else if (ParseFlag(arg, "--warmup-ms", &v)) {
      config.warmup = Millis(std::atof(v.c_str()));
    } else if (std::strcmp(arg, "--per-site") == 0) {
      per_site = true;
    } else if (std::strcmp(arg, "--hist") == 0) {
      histogram = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (see --help)\n", arg);
      return 2;
    }
  }

  std::printf("# %s | %s | seed=%llu seeds=%d runtime=%s\n",
              core::ProtocolName(config.protocol).c_str(),
              config.workload.ToString().c_str(),
              static_cast<unsigned long long>(config.seed), seeds,
              runtime::RuntimeKindName(config.runtime));

  // Validate the configuration once up front for a friendly error.
  {
    Result<std::unique_ptr<core::System>> probe =
        core::System::Create(config);
    if (!probe.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   probe.status().ToString().c_str());
      return 1;
    }
  }

  // Outputs that describe one concrete run (histograms, per-site tables,
  // traces, metric snapshots) don't mix with seed averaging: run once.
  const bool single_run = histogram || per_site || !trace_path.empty() ||
                          !metrics_out.empty() || !trace_out.empty();
  if (single_run) {
    auto system = core::System::Create(config);
    LAZYREP_CHECK(system.ok());
    core::RunMetrics metrics = (*system)->Run();
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
        return 1;
      }
      obs::WritePrometheus((*system)->obs_registry(), out);
      std::printf("metrics: %s\n", metrics_out.c_str());
    }
    if (!trace_out.empty()) {
      std::ofstream out(trace_out);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", trace_out.c_str());
        return 1;
      }
      obs::WriteChromeTrace(*(*system)->trace(), out);
      std::printf("trace_event: %zu events -> %s%s\n",
                  (*system)->trace()->size(), trace_out.c_str(),
                  (*system)->trace()->truncated() ? " (truncated)" : "");
    }
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
        return 1;
      }
      (*system)->trace()->WriteJsonl(out);
      std::printf("trace: %zu events -> %s%s\n",
                  (*system)->trace()->size(), trace_path.c_str(),
                  (*system)->trace()->truncated() ? " (truncated)" : "");
    }
    if (histogram) {
      std::printf("response time distribution (ms):\n%s",
                  metrics.response_histogram.ToString().c_str());
      std::printf("p50=%.2f p95=%.2f p99=%.2f max=%.2f\n",
                  metrics.response_p50_ms, metrics.response_p95_ms,
                  metrics.response_p99_ms, metrics.response_ms.max());
    }
    if (per_site) {
      std::printf("%-6s %-12s %-10s %-12s\n", "site", "committed",
                  "aborted", "txn/s");
      for (const core::SiteMetrics& s : metrics.per_site) {
        std::printf("%-6d %-12lld %-10lld %-12.2f\n", s.site,
                    static_cast<long long>(s.committed),
                    static_cast<long long>(s.aborted), s.throughput);
      }
    }
    std::printf("throughput      %.2f txn/s per site\n",
                metrics.avg_site_throughput);
    if (metrics.read_committed > 0) {
      std::printf("snapshot reads  %lld (p99 %.2f ms, staleness %.2f ms, "
                  "consistent %s)\n",
                  static_cast<long long>(metrics.read_committed),
                  metrics.read_p99_ms, metrics.staleness_ms.mean(),
                  metrics.snapshots_consistent ? "yes" : "NO");
    }
    std::printf("serializable    %s\n",
                metrics.serializable ? "yes" : "NO");
    return metrics.serializable && metrics.snapshots_consistent ? 0 : 1;
  }

  harness::AggregateResult result = harness::RunSeeds(config, seeds);
  std::printf("throughput      %.2f txn/s per site (sd %.2f over seeds)\n",
              result.throughput, result.throughput_sd);
  std::printf("abort rate      %.2f %%\n", result.abort_rate_pct);
  std::printf("response        %.2f ms mean, %.2f ms p95\n",
              result.response_ms, result.response_p95_ms);
  std::printf("propagation     %.2f ms to all replicas\n",
              result.propagation_ms);
  std::printf("messages        %.2f per transaction\n",
              result.messages_per_txn);
  std::printf("committed       %lld over %d run(s)\n",
              static_cast<long long>(result.committed), result.runs);
  if (result.read_committed > 0) {
    std::printf("snapshot reads  %.2f txn/s per site "
                "(p99 %.2f ms, staleness %.2f ms, consistent %s)\n",
                result.read_throughput, result.read_p99_ms,
                result.staleness_ms,
                result.all_snapshots_consistent ? "yes" : "NO");
  }
  std::printf("serializable    %s\n",
              result.all_serializable ? "yes" : "NO");
  std::printf("converged       %s\n", result.all_converged ? "yes" : "NO");
  return result.all_serializable && result.all_snapshots_consistent ? 0 : 1;
}
