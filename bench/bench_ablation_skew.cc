// Extension ablation: access skew. The paper's workload is uniform over
// each site's items; real workloads are skewed. Items are drawn
// Zipf(θ)-distributed (θ=0 is the paper's uniform). Skew concentrates
// conflicts on a few hot items, driving deadlock timeouts up and
// throughput down for both protocols; PSL additionally funnels all hot
// reads to the hot items' primary sites.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace lazyrep;
  harness::BenchOptions options = harness::ParseBenchArgs(argc, argv);

  core::SystemConfig base = harness::PaperConfig(core::Protocol::kBackEdge);
  harness::ApplyOptions(options, &base);
  bench::PrintBanner(
      "Ablation: Zipf access skew (theta=0 is the paper's uniform "
      "workload)",
      base, options);

  harness::Table table({"theta", "BackEdge_tps", "PSL_tps", "BE_abort%",
                        "PSL_abort%", "BE_SR", "PSL_SR"},
                       options.csv);
  table.PrintHeader();
  for (double theta : {0.0, 0.4, 0.8, 1.0, 1.2}) {
    core::SystemConfig be = base;
    be.protocol = core::Protocol::kBackEdge;
    be.workload.zipf_theta = theta;
    harness::AggregateResult be_result =
        harness::RunSeeds(be, options.seeds);

    core::SystemConfig psl = base;
    psl.protocol = core::Protocol::kPsl;
    psl.workload.zipf_theta = theta;
    harness::AggregateResult psl_result =
        harness::RunSeeds(psl, options.seeds);

    table.PrintRow({harness::Table::Num(theta, 1),
                    harness::Table::Num(be_result.throughput),
                    harness::Table::Num(psl_result.throughput),
                    harness::Table::Num(be_result.abort_rate_pct),
                    harness::Table::Num(psl_result.abort_rate_pct),
                    be_result.all_serializable ? "yes" : "NO",
                    psl_result.all_serializable ? "yes" : "NO"});
  }
  return 0;
}
