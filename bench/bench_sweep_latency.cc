// Table 1 lists 0.15-100 ms as the explored network-latency range (full
// sweep in [BKRSS98]): throughput of BackEdge and PSL as the one-way
// latency grows. Expected shape: PSL collapses quickly — remote reads put
// the latency on every transaction's critical path and remote S locks are
// held across it — while BackEdge's lazy propagation keeps latency off
// the critical path (only backedge transactions suffer), so its curve is
// far flatter.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace lazyrep;
  harness::BenchOptions options = harness::ParseBenchArgs(argc, argv);

  core::SystemConfig base = harness::PaperConfig(core::Protocol::kBackEdge);
  harness::ApplyOptions(options, &base);
  bench::PrintBanner(
      "[BKRSS98] sweep: throughput vs one-way network latency",
      base, options);

  harness::Table table({"latency_ms", "BackEdge_tps", "PSL_tps",
                        "BE_abort%", "PSL_abort%", "BE_prop_ms"},
                       options.csv);
  table.PrintHeader();
  for (double ms : {0.15, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0}) {
    core::SystemConfig be = base;
    be.protocol = core::Protocol::kBackEdge;
    be.workload.network_latency = Millis(ms);
    harness::AggregateResult be_result =
        harness::RunSeeds(be, options.seeds);

    core::SystemConfig psl = base;
    psl.protocol = core::Protocol::kPsl;
    psl.workload.network_latency = Millis(ms);
    harness::AggregateResult psl_result =
        harness::RunSeeds(psl, options.seeds);

    table.PrintRow({harness::Table::Num(ms),
                    harness::Table::Num(be_result.throughput),
                    harness::Table::Num(psl_result.throughput),
                    harness::Table::Num(be_result.abort_rate_pct),
                    harness::Table::Num(psl_result.abort_rate_pct),
                    harness::Table::Num(be_result.propagation_ms)});
  }
  return 0;
}
