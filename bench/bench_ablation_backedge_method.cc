// Ablation of §4.2: how the backedge set B is chosen. The paper notes
// that minimizing the (traffic-)weight of B is the NP-hard feedback arc
// set problem and suggests approximation algorithms. Compared here on
// cyclic generated placements (b=0.6):
//   site-order  — §5.2's definition (backward edges of the natural order);
//   dfs         — minimal set via depth-first search (§4);
//   greedy      — Eades–Lin–Smyth heuristic, unweighted;
//   weighted    — ELS with per-edge update-traffic weights (§4.2 proper).
// Less backedge traffic weight => fewer transactions take the eager 2PC
// path => fewer global deadlocks and better throughput.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace lazyrep;
  harness::BenchOptions options = harness::ParseBenchArgs(argc, argv);

  core::SystemConfig base = harness::PaperConfig(core::Protocol::kBackEdge);
  harness::ApplyOptions(options, &base);
  base.workload.backedge_prob = 0.6;
  base.workload.replication_prob = 0.4;
  bench::PrintBanner(
      "Ablation: backedge-set selection (§4.2) on cyclic placements",
      base, options);

  harness::Table table({"method", "backedges", "traffic_w", "tps",
                        "abort%", "SR"},
                       options.csv);
  table.PrintHeader();
  struct Row {
    const char* label;
    core::BackedgeMethod method;
  };
  for (const Row& row :
       {Row{"site-order", core::BackedgeMethod::kSiteOrder},
        Row{"dfs", core::BackedgeMethod::kDfs},
        Row{"greedy", core::BackedgeMethod::kGreedy},
        Row{"weighted", core::BackedgeMethod::kWeightedGreedy}}) {
    core::SystemConfig config = base;
    config.engine.backedge_method = row.method;

    // Structural stats on the seed-1 placement.
    Rng rng(config.seed);
    graph::Placement placement =
        workload::GeneratePlacement(config.workload, &rng);
    auto routing = core::Routing::Build(placement, config.protocol,
                                        config.engine);
    LAZYREP_CHECK(routing.ok());

    harness::AggregateResult result =
        harness::RunSeeds(config, options.seeds);
    table.PrintRow({row.label,
                    std::to_string((*routing)->backedges().size()),
                    harness::Table::Num((*routing)->BackedgeTrafficWeight(),
                                        0),
                    harness::Table::Num(result.throughput),
                    harness::Table::Num(result.abort_rate_pct),
                    result.all_serializable ? "yes" : "NO"});
  }
  return 0;
}
