// Ablation of DAG(T)'s progress machinery (§3.3): the epoch/dummy period
// controls how long a multi-parent site's applier waits for a quiet
// parent's queue to become non-empty before it may execute the next
// update. Short periods cut propagation delay but flood the network/CPU
// with dummy subtransactions; long periods are cheap but gate propagation.
// The paper does not report a period; this sweep exposes the tradeoff the
// implementation had to make.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace lazyrep;
  harness::BenchOptions options = harness::ParseBenchArgs(argc, argv);

  core::SystemConfig base = harness::PaperConfig(core::Protocol::kDagT);
  harness::ApplyOptions(options, &base);
  base.workload.backedge_prob = 0.0;
  bench::PrintBanner(
      "Ablation: DAG(T) epoch/dummy period — propagation delay vs dummy "
      "traffic",
      base, options);

  harness::Table table({"period_ms", "tps", "abort%", "msgs/txn",
                        "prop_ms", "SR"},
                       options.csv);
  table.PrintHeader();
  for (double period_ms : {10.0, 25.0, 50.0, 100.0, 250.0}) {
    core::SystemConfig config = base;
    config.engine.epoch_period = Millis(period_ms);
    config.engine.dummy_period = Millis(period_ms);
    // A too-short period floods the CPUs with dummies and the workload
    // cannot finish — reported as SATURATED.
    config.max_sim_time = Seconds(300);
    harness::AggregateResult result =
        harness::RunSeeds(config, options.seeds, /*allow_timeout=*/true);
    if (result.saturated && result.runs == 0) {
      table.PrintRow({harness::Table::Num(period_ms, 0), "SATURATED", "-",
                      "-", "-", "-"});
      continue;
    }
    table.PrintRow({harness::Table::Num(period_ms, 0),
                    harness::Table::Num(result.throughput),
                    harness::Table::Num(result.abort_rate_pct),
                    harness::Table::Num(result.messages_per_txn),
                    harness::Table::Num(result.propagation_ms),
                    result.all_serializable ? "yes" : "NO"});
  }
  return 0;
}
