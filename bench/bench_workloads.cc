// Workload crossover atlas (docs/WORKLOADS.md §4): the standard
// benchmark suite — YCSB-A/B, SmallBank, TPC-C-lite — swept over
// protocol × skew × site count × read mix, with per-event CPU.
//
// The point of the atlas is protocol *crossovers*: regions of workload
// space where the protocol ranking flips (e.g. PSL loses 5x on
// read-heavy YCSB-B, where every replica read proxies to the primary,
// yet beats every tree protocol on partition-local TPC-C-lite; see
// docs/WORKLOADS.md §4 for the committed findings). Three grids:
//
//   1. Skew grid      — workload × θ ∈ {0, 0.8, 1.2} × protocol.
//   2. Site scaling   — workload × m ∈ {5, 9, 15} × protocol at θ=0.8.
//   3. Read-mix grid  — SmallBank Balance fraction × protocol at θ=0.8
//                       (YCSB covers its read axis via the A/B mixes).
//
// All runs share backedge_prob=0 so every protocol sees the same
// DAG-constrained placement family (BackEdge included, so the
// comparison isolates the propagation rule, not the copy graph). The
// headline per-cell costs are sim throughput and process-CPU
// microseconds per commit (getrusage, as in bench_multicore).
//
// JSON rows land in --json=PATH with bench="atlas_<workload>"; the
// committed atlas is BENCH_workloads.json at the repo root.

#include <sys/resource.h>

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "workload/params.h"

namespace {

using namespace lazyrep;

double ProcessCpuSeconds() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  auto seconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return seconds(ru.ru_utime) + seconds(ru.ru_stime);
}

constexpr core::Protocol kProtocols[] = {
    core::Protocol::kDagWt, core::Protocol::kDagT,
    core::Protocol::kBackEdge, core::Protocol::kPsl};

struct Cell {
  harness::AggregateResult result;
  double cpu_us_per_commit = 0;
};

Cell RunCell(core::SystemConfig config, const harness::BenchOptions& options) {
  Cell cell;
  double cpu_before = ProcessCpuSeconds();
  cell.result = harness::RunSeeds(config, options.seeds);
  double cpu_spent = ProcessCpuSeconds() - cpu_before;
  cell.cpu_us_per_commit =
      cell.result.committed > 0
          ? cpu_spent * 1e6 / static_cast<double>(cell.result.committed)
          : 0;
  return cell;
}

void EmitRow(const harness::BenchOptions& options,
             const core::SystemConfig& config, const Cell& cell,
             std::vector<std::pair<std::string, double>> params) {
  params.emplace_back("cpu_us_per_commit", cell.cpu_us_per_commit);
  harness::AppendBenchJson(
      options.json,
      std::string("atlas_") +
          workload::WorkloadKindName(config.workload.workload),
      core::ProtocolName(config.protocol), options.runtime, params, cell.result);
}

}  // namespace

int main(int argc, char** argv) {
  harness::BenchOptions options = harness::ParseBenchArgs(argc, argv);

  core::SystemConfig base = harness::PaperConfig(core::Protocol::kBackEdge);
  harness::ApplyOptions(options, &base);
  // One placement family for every protocol: no backedges, so the DAG
  // protocols and BackEdge run the exact same copy graphs.
  base.workload.backedge_prob = 0.0;
  if (!options.txns_set) {
    // 100+ cells; keep the full atlas inside a few minutes of sim time.
    base.workload.txns_per_thread = options.quick ? 40 : 120;
  }
  bench::PrintBanner(
      "workload crossover atlas: YCSB / SmallBank / TPC-C-lite "
      "x protocol x skew x sites (docs/WORKLOADS.md)",
      base, options);

  const std::vector<workload::WorkloadKind> kWorkloads = {
      workload::WorkloadKind::kYcsbA, workload::WorkloadKind::kYcsbB,
      workload::WorkloadKind::kSmallBank, workload::WorkloadKind::kTpccLite};

  // --- Grid 1: skew ---------------------------------------------------
  {
    harness::Table table({"workload", "theta", "protocol", "tps",
                          "cpu_us/commit", "abort%", "resp_ms", "msgs/txn",
                          "SR", "conv"},
                         options.csv);
    table.PrintHeader();
    for (workload::WorkloadKind kind : kWorkloads) {
      for (double theta : {0.0, 0.8, 1.2}) {
        for (core::Protocol protocol : kProtocols) {
          core::SystemConfig config = base;
          config.protocol = protocol;
          config.workload.workload = kind;
          config.workload.zipf_theta = theta;
          Cell cell = RunCell(config, options);
          EmitRow(options, config, cell,
                  {{"theta", theta},
                   {"sites", static_cast<double>(config.workload.num_sites)},
                   {"read_txn_prob", config.workload.read_txn_prob}});
          table.PrintRow({workload::WorkloadKindName(kind),
                          harness::Table::Num(theta, 1),
                          core::ProtocolName(protocol),
                          harness::Table::Num(cell.result.throughput),
                          harness::Table::Num(cell.cpu_us_per_commit),
                          harness::Table::Num(cell.result.abort_rate_pct),
                          harness::Table::Num(cell.result.response_ms),
                          harness::Table::Num(cell.result.messages_per_txn),
                          cell.result.all_serializable ? "yes" : "NO",
                          cell.result.all_converged ? "yes" : "NO"});
        }
      }
    }
  }

  // --- Grid 2: site scaling at θ=0.8 ----------------------------------
  if (!options.quick) {
    std::printf("\n# site scaling at theta=0.8\n");
    harness::Table table({"workload", "sites", "protocol", "tps",
                          "cpu_us/commit", "abort%", "msgs/txn", "SR",
                          "conv"},
                         options.csv);
    table.PrintHeader();
    for (workload::WorkloadKind kind : kWorkloads) {
      for (int sites : {5, 9, 15}) {
        for (core::Protocol protocol : kProtocols) {
          core::SystemConfig config = base;
          config.protocol = protocol;
          config.workload.workload = kind;
          config.workload.zipf_theta = 0.8;
          config.workload.num_sites = sites;
          // Keep items-per-warehouse (and accounts-per-site) constant
          // as sites grow, as TPC-C scales warehouses: n/m fixed at the
          // paper's 200/9 ≈ 22 items per site, rounded to TPC-C-lite's
          // floor of 8.
          config.workload.num_items = sites * (200 / 9);
          Cell cell = RunCell(config, options);
          EmitRow(options, config, cell,
                  {{"theta", 0.8},
                   {"sites", static_cast<double>(sites)},
                   {"read_txn_prob", config.workload.read_txn_prob}});
          table.PrintRow({workload::WorkloadKindName(kind),
                          std::to_string(sites), core::ProtocolName(protocol),
                          harness::Table::Num(cell.result.throughput),
                          harness::Table::Num(cell.cpu_us_per_commit),
                          harness::Table::Num(cell.result.abort_rate_pct),
                          harness::Table::Num(cell.result.messages_per_txn),
                          cell.result.all_serializable ? "yes" : "NO",
                          cell.result.all_converged ? "yes" : "NO"});
        }
      }
    }
  }

  // --- Grid 3: SmallBank read mix at θ=0.8 ----------------------------
  if (!options.quick) {
    std::printf("\n# smallbank balance-fraction sweep at theta=0.8\n");
    harness::Table table({"balance_frac", "protocol", "tps",
                          "cpu_us/commit", "abort%", "msgs/txn", "SR",
                          "conv"},
                         options.csv);
    table.PrintHeader();
    for (double balance : {0.2, 0.5, 0.8}) {
      for (core::Protocol protocol : kProtocols) {
        core::SystemConfig config = base;
        config.protocol = protocol;
        config.workload.workload = workload::WorkloadKind::kSmallBank;
        config.workload.zipf_theta = 0.8;
        config.workload.read_txn_prob = balance;
        Cell cell = RunCell(config, options);
        EmitRow(options, config, cell,
                {{"theta", 0.8},
                 {"sites", static_cast<double>(config.workload.num_sites)},
                 {"read_txn_prob", balance}});
        table.PrintRow({harness::Table::Num(balance, 1),
                        core::ProtocolName(protocol),
                        harness::Table::Num(cell.result.throughput),
                        harness::Table::Num(cell.cpu_us_per_commit),
                        harness::Table::Num(cell.result.abort_rate_pct),
                        harness::Table::Num(cell.result.messages_per_txn),
                        cell.result.all_serializable ? "yes" : "NO",
                        cell.result.all_converged ? "yes" : "NO"});
      }
    }
  }
  return 0;
}
