// Table 1 lists 3-15 sites as the explored range (full sweep relegated to
// the technical report [BKRSS98]): throughput of BackEdge and PSL as the
// number of sites grows, 3 sites per machine, other parameters at
// defaults. Expected shape: BackEdge's advantage persists at every scale;
// per-site throughput falls as each machine hosts more total work and
// replicas spread wider.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace lazyrep;
  harness::BenchOptions options = harness::ParseBenchArgs(argc, argv);

  core::SystemConfig base = harness::PaperConfig(core::Protocol::kBackEdge);
  harness::ApplyOptions(options, &base);
  bench::PrintBanner(
      "[BKRSS98] sweep: throughput vs number of sites (3 per machine)",
      base, options);

  harness::Table table({"sites", "BackEdge_tps", "PSL_tps", "BE_abort%",
                        "PSL_abort%", "BE_SR", "PSL_SR"},
                       options.csv);
  table.PrintHeader();
  for (int m : {3, 6, 9, 12, 15}) {
    core::SystemConfig be = base;
    be.protocol = core::Protocol::kBackEdge;
    be.workload.num_sites = m;
    harness::AggregateResult be_result =
        harness::RunSeeds(be, options.seeds);

    core::SystemConfig psl = base;
    psl.protocol = core::Protocol::kPsl;
    psl.workload.num_sites = m;
    harness::AggregateResult psl_result =
        harness::RunSeeds(psl, options.seeds);

    table.PrintRow({std::to_string(m),
                    harness::Table::Num(be_result.throughput),
                    harness::Table::Num(psl_result.throughput),
                    harness::Table::Num(be_result.abort_rate_pct),
                    harness::Table::Num(psl_result.abort_rate_pct),
                    be_result.all_serializable ? "yes" : "NO",
                    psl_result.all_serializable ? "yes" : "NO"});
  }
  return 0;
}
