// Worker-scaling sweep: the same 4-site BackEdge workload on one
// machine with 1, 2, and 4 worker lanes, under a 1-stripe (single
// global mutex) and an 8-stripe lock table.
//
// On a single-core container wall-clock throughput cannot show lane
// parallelism (docs/PERFORMANCE.md §4), so the headline column is
// per-event CPU: process CPU time (getrusage, user+sys) divided by
// committed transactions. Striping pays off as flat-or-falling CPU per
// commit as lanes grow, where the single mutex pays serialization and
// cache-line bouncing on every acquire/release.

#include <sys/resource.h>

#include "bench/bench_common.h"

namespace {

double ProcessCpuSeconds() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  auto seconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return seconds(ru.ru_utime) + seconds(ru.ru_stime);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lazyrep;
  harness::BenchOptions options = harness::ParseBenchArgs(argc, argv);
  // Worker lanes only exist under the threads runtime; sim rejects
  // workers_per_site > 1 to keep goldens byte-stable.
  options.runtime = runtime::RuntimeKind::kThreads;

  core::SystemConfig base = harness::PaperConfig(core::Protocol::kBackEdge);
  harness::ApplyOptions(options, &base);
  base.workload.num_sites = 4;
  base.workload.sites_per_machine = 4;  // One machine; lanes do the work.
  base.workload.threads_per_site = 2;
  if (!options.txns_set) {
    // Threads runs pay real milliseconds per transaction; keep the
    // 6-configuration sweep under a couple of minutes by default.
    base.workload.txns_per_thread = options.quick ? 5 : 30;
  }
  bench::PrintBanner(
      "worker scaling: per-event CPU vs worker lanes "
      "(4 sites on 1 machine, BackEdge, 1 vs 8 lock stripes)",
      base, options);

  harness::Table table({"stripes", "workers", "tps", "speedup",
                        "cpu_us/commit", "abort%", "SR", "converged"},
                       options.csv);
  table.PrintHeader();
  for (int stripes : {1, 8}) {
    double base_tps = 0;
    for (int workers : {1, 2, 4}) {
      core::SystemConfig config = base;
      config.engine.lock_stripes = stripes;
      config.workers_per_site = workers;
      double cpu_before = ProcessCpuSeconds();
      harness::AggregateResult result =
          harness::RunSeeds(config, options.seeds);
      double cpu_spent = ProcessCpuSeconds() - cpu_before;
      double cpu_us_per_commit =
          result.committed > 0
              ? cpu_spent * 1e6 / static_cast<double>(result.committed)
              : 0;
      if (base_tps == 0) base_tps = result.throughput;
      double speedup = base_tps > 0 ? result.throughput / base_tps : 0;
      harness::AppendBenchJson(
          options.json, "multicore_workers", "BackEdge", options.runtime,
          {{"lock_stripes", static_cast<double>(stripes)},
           {"workers", static_cast<double>(workers)},
           {"speedup", speedup},
           {"cpu_us_per_commit", cpu_us_per_commit}},
          result);
      table.PrintRow({std::to_string(stripes), std::to_string(workers),
                      harness::Table::Num(result.throughput),
                      harness::Table::Num(speedup),
                      harness::Table::Num(cpu_us_per_commit),
                      harness::Table::Num(result.abort_rate_pct),
                      result.all_serializable ? "yes" : "NO",
                      result.all_converged ? "yes" : "NO"});
    }
  }
  return 0;
}
