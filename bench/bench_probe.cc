// Internal calibration probe (not a paper figure): prints detailed
// lock/latency breakdowns for one configuration. Useful when tuning the
// cost model; kept out of the default bench set.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace lazyrep;
  harness::BenchOptions options = harness::ParseBenchArgs(argc, argv);
  core::SystemConfig config =
      harness::PaperConfig(core::Protocol::kBackEdge);
  config.workload.txns_per_thread = options.txns_per_thread;
  config.workload.backedge_prob = 0.0;

  auto system = core::System::Create(config);
  LAZYREP_CHECK(system.ok());
  core::System& sys = **system;
  core::RunMetrics m = sys.Run();
  std::printf("committed=%lld aborted=%lld tput=%.2f abort%%=%.2f\n",
              (long long)m.committed, (long long)m.aborted,
              m.avg_site_throughput, m.abort_rate_pct);
  std::printf("response: %s\n", m.response_ms.ToString().c_str());
  std::printf("propagation: %s\n",
              m.propagation_delay_ms.ToString().c_str());
  std::printf("messages=%llu lock_waits=%llu lock_timeouts=%llu\n",
              (unsigned long long)m.messages,
              (unsigned long long)m.lock_waits,
              (unsigned long long)m.lock_timeouts);
  for (SiteId s = 0; s < config.workload.num_sites; ++s) {
    const auto& stats = sys.database(s).locks().stats();
    std::printf(
        "site %d: requests=%llu grants=%llu waits=%llu timeouts=%llu "
        "wait_aborts=%llu wait_ms={%s}\n",
        s, (unsigned long long)stats.requests,
        (unsigned long long)stats.immediate_grants,
        (unsigned long long)stats.waits,
        (unsigned long long)stats.timeouts,
        (unsigned long long)stats.wait_aborts,
        stats.wait_time_ms.ToString().c_str());
  }
  return 0;
}
