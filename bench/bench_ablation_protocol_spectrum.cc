// The full protocol spectrum at the Table 1 defaults restricted to a DAG
// placement (b=0) so every protocol can run: the paper's lazy protocols
// (DAG(WT), DAG(T), BackEdge), the PSL baseline, eager read-one/write-all
// (the intro's scalability foil), and indiscriminate lazy propagation
// with and without last-writer-wins reconciliation (the commercial
// practice of §1 — note the serializability column).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace lazyrep;
  harness::BenchOptions options = harness::ParseBenchArgs(argc, argv);

  core::SystemConfig base = harness::PaperConfig(core::Protocol::kDagWt);
  harness::ApplyOptions(options, &base);
  base.workload.backedge_prob = 0.0;
  // Jitter makes indiscriminate propagation's anomalies visible.
  base.costs.net_jitter = Millis(2);
  bench::PrintBanner(
      "Ablation: full protocol spectrum at defaults (b=0, 2ms jitter)",
      base, options);

  harness::Table table({"protocol", "tps", "abort%", "resp_ms", "prop_ms",
                        "msgs/txn", "serializable", "converged"},
                       options.csv);
  table.PrintHeader();

  struct Row {
    const char* label;
    core::Protocol protocol;
    bool lww;
  };
  for (const Row& row : {Row{"DAG(WT)", core::Protocol::kDagWt, false},
                         Row{"DAG(T)", core::Protocol::kDagT, false},
                         Row{"BackEdge", core::Protocol::kBackEdge, false},
                         Row{"PSL", core::Protocol::kPsl, false},
                         Row{"Eager", core::Protocol::kEager, false},
                         Row{"NaiveLazy", core::Protocol::kNaiveLazy,
                             false},
                         Row{"NaiveLazy+LWW", core::Protocol::kNaiveLazy,
                             true}}) {
    core::SystemConfig config = base;
    config.protocol = row.protocol;
    config.engine.naive_lww = row.lww;
    harness::AggregateResult result =
        harness::RunSeeds(config, options.seeds);
    table.PrintRow({row.label, harness::Table::Num(result.throughput),
                    harness::Table::Num(result.abort_rate_pct),
                    harness::Table::Num(result.response_ms),
                    row.protocol == core::Protocol::kPsl
                        ? "n/a"
                        : harness::Table::Num(result.propagation_ms),
                    harness::Table::Num(result.messages_per_txn),
                    result.all_serializable ? "yes" : "NO",
                    result.all_converged ? "yes" : "NO"});
  }
  std::printf(
      "\nNotes: BackEdge equals DAG(WT) exactly at b=0 (no backedges =>\n"
      "identical protocol, identical seeded run). NaiveLazy CONVERGES in\n"
      "the primary-copy model (one master per item + FIFO channels mean\n"
      "last-writer-wins reconciliation never fires -- the +LWW row is\n"
      "identical by construction) but is NOT serializable: stale reads\n"
      "weave Example 1.1 cycles across items.\n");
  return 0;
}
