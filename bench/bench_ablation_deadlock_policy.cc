// Ablation of the deadlock-resolution mechanism: the paper's 50 ms lock
// timeout vs local waits-for-graph detection (timeout retained as the
// distributed backstop). Detection resolves local deadlocks immediately
// instead of burning the timeout, trading CPU for latency. Also sweeps
// the timeout value itself — the paper fixed it at 50 ms.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace lazyrep;
  harness::BenchOptions options = harness::ParseBenchArgs(argc, argv);

  core::SystemConfig base = harness::PaperConfig(core::Protocol::kBackEdge);
  harness::ApplyOptions(options, &base);
  bench::PrintBanner(
      "Ablation: deadlock handling — timeout (paper) vs local detection; "
      "timeout sensitivity",
      base, options);

  harness::Table table({"policy", "timeout_ms", "tps", "abort%",
                        "resp_ms", "SR"},
                       options.csv);
  table.PrintHeader();
  for (double timeout_ms : {10.0, 25.0, 50.0, 100.0, 200.0}) {
    for (storage::DeadlockPolicy policy :
         {storage::DeadlockPolicy::kTimeoutOnly,
          storage::DeadlockPolicy::kLocalDetection}) {
      core::SystemConfig config = base;
      config.workload.deadlock_timeout = Millis(timeout_ms);
      config.engine.deadlock_policy = policy;
      harness::AggregateResult result =
          harness::RunSeeds(config, options.seeds);
      table.PrintRow(
          {policy == storage::DeadlockPolicy::kTimeoutOnly ? "timeout"
                                                           : "detection",
           harness::Table::Num(timeout_ms, 0),
           harness::Table::Num(result.throughput),
           harness::Table::Num(result.abort_rate_pct),
           harness::Table::Num(result.response_ms),
           result.all_serializable ? "yes" : "NO"});
    }
  }
  return 0;
}
