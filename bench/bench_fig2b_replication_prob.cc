// Reproduces Figure 2(b): average per-site throughput of BackEdge and PSL
// as the replication probability `r` is varied from 0 to 1, other
// parameters at Table 1 defaults.
//
// Paper shape: both protocols degrade as the number of replicas grows;
// throughput drops sharply from r=0 (every transaction fully local, the
// two protocols identical) to r=0.1; BackEdge stays ≈2x PSL for every
// r > 0 because replicas multiply much faster than replicated items and
// 85% of operations are reads (remote for PSL, local for BackEdge).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace lazyrep;
  harness::BenchOptions options = harness::ParseBenchArgs(argc, argv);

  core::SystemConfig base = harness::PaperConfig(core::Protocol::kBackEdge);
  harness::ApplyOptions(options, &base);
  bench::PrintBanner(
      "Figure 2(b): throughput vs replication probability (BackEdge vs "
      "PSL)",
      base, options);

  harness::Table table({"r", "BackEdge_tps", "PSL_tps", "BE_abort%",
                        "PSL_abort%", "replicas", "BE_SR", "PSL_SR"},
                       options.csv);
  table.PrintHeader();
  for (double r : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9,
                   1.0}) {
    core::SystemConfig be = base;
    be.protocol = core::Protocol::kBackEdge;
    be.workload.replication_prob = r;
    harness::AggregateResult be_result =
        harness::RunSeeds(be, options.seeds);

    core::SystemConfig psl = base;
    psl.protocol = core::Protocol::kPsl;
    psl.workload.replication_prob = r;
    harness::AggregateResult psl_result =
        harness::RunSeeds(psl, options.seeds);

    // Count replicas for the paper's "almost 500 replicas at r=1" note.
    Rng rng(be.seed);
    graph::Placement placement =
        workload::GeneratePlacement(be.workload, &rng);

    table.PrintRow({harness::Table::Num(r, 1),
                    harness::Table::Num(be_result.throughput),
                    harness::Table::Num(psl_result.throughput),
                    harness::Table::Num(be_result.abort_rate_pct),
                    harness::Table::Num(psl_result.abort_rate_pct),
                    std::to_string(placement.TotalReplicas()),
                    be_result.all_serializable ? "yes" : "NO",
                    psl_result.all_serializable ? "yes" : "NO"});
  }
  return 0;
}
