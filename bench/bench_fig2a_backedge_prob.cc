// Reproduces Figure 2(a): average per-site throughput of the BackEdge and
// PSL protocols as the backedge probability `b` is varied from 0 to 1
// with all other parameters at their Table 1 defaults. Also prints the
// abort-rate trend discussed in §5.3.1.
//
// Paper shape: BackEdge ≈ 3x PSL at b=0, declining as b grows (more
// backedge subtransactions -> longer lock holds -> global deadlocks),
// but still above PSL at b=1. PSL is nearly flat with a slight decline.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace lazyrep;
  harness::BenchOptions options = harness::ParseBenchArgs(argc, argv);

  core::SystemConfig base = harness::PaperConfig(core::Protocol::kBackEdge);
  harness::ApplyOptions(options, &base);
  bench::PrintBanner(
      "Figure 2(a): throughput vs backedge probability (BackEdge vs PSL)",
      base, options);

  harness::Table table({"b", "BackEdge_tps", "PSL_tps", "BE_abort%",
                        "PSL_abort%", "BE_msgs/txn", "PSL_msgs/txn",
                        "BE_SR", "PSL_SR"},
                       options.csv);
  table.PrintHeader();
  for (double b : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9,
                   1.0}) {
    core::SystemConfig be = base;
    be.protocol = core::Protocol::kBackEdge;
    be.workload.backedge_prob = b;
    harness::AggregateResult be_result =
        harness::RunSeeds(be, options.seeds);

    core::SystemConfig psl = base;
    psl.protocol = core::Protocol::kPsl;
    psl.workload.backedge_prob = b;
    harness::AggregateResult psl_result =
        harness::RunSeeds(psl, options.seeds);

    harness::AppendBenchJson(options.json, "fig2a", "BackEdge",
                             options.runtime, {{"backedge_prob", b}},
                             be_result);
    harness::AppendBenchJson(options.json, "fig2a", "PSL", options.runtime,
                             {{"backedge_prob", b}}, psl_result);
    table.PrintRow({harness::Table::Num(b, 1),
                    harness::Table::Num(be_result.throughput),
                    harness::Table::Num(psl_result.throughput),
                    harness::Table::Num(be_result.abort_rate_pct),
                    harness::Table::Num(psl_result.abort_rate_pct),
                    harness::Table::Num(be_result.messages_per_txn),
                    harness::Table::Num(psl_result.messages_per_txn),
                    be_result.all_serializable ? "yes" : "NO",
                    psl_result.all_serializable ? "yes" : "NO"});
  }
  return 0;
}
