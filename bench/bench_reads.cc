// Secondary read serving: MVCC snapshot reads vs strict-2PL reads
// (docs/MVCC.md). Every site in the Breitbart et al. system is a
// secondary for most of the item space, so its read traffic is exactly
// the "read at a replica" load lazy propagation exists to serve. This
// bench measures what the lock-free snapshot path buys that traffic:
//
//   grid:  workload ∈ {YCSB-B, YCSB-C, SmallBank balance-heavy}
//          × workers-per-machine ∈ {1, 4}
//          × consistency ∈ {serializable, snapshot}
//
// DAG(WT) throughout (b=0), θ=0.8 skew, threads runtime (the workers
// axis needs real lanes). YCSB runs one op per request — the standard
// YCSB shape — so a 2PL read pays read_cpu + commit_cpu plus any
// S-lock wait behind writers and appliers, while a snapshot read pays
// snapshot_read_cpu and never touches the lock manager. SmallBank
// keeps its native multi-op transactions with an 80% Balance mix.
//
// Per (workload, workers) pair the bench reports both arms' read-only
// throughput measured directly (locked_read_* for the 2PL arm,
// read_* for the snapshot arm), p99 read latency, lock waits removed,
// watermark staleness, and the read-throughput speedup. JSON rows
// land in --json=PATH with bench="reads_<workload>"; the committed
// artifact is BENCH_reads.json at the repo root.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "storage/mvcc.h"
#include "workload/params.h"

namespace {

using namespace lazyrep;

struct WorkloadCase {
  workload::WorkloadKind kind;
  const char* label;
};

struct Arm {
  harness::AggregateResult result;
  /// Read-only throughput / p99 of this arm's own serving path.
  double read_tps = 0;
  double read_p99_ms = 0;
};

Arm RunArm(core::SystemConfig config, storage::ConsistencyLevel level,
           const harness::BenchOptions& options) {
  config.consistency = level;
  Arm arm;
  arm.result = harness::RunSeeds(config, options.seeds);
  if (level == storage::ConsistencyLevel::kSerializable) {
    arm.read_tps = arm.result.locked_read_throughput;
    arm.read_p99_ms = arm.result.locked_read_p99_ms;
  } else {
    arm.read_tps = arm.result.read_throughput;
    arm.read_p99_ms = arm.result.read_p99_ms;
  }
  return arm;
}

}  // namespace

int main(int argc, char** argv) {
  harness::BenchOptions options = harness::ParseBenchArgs(argc, argv);
  // The workers axis needs real lanes: this bench always runs the
  // threads backend (metrics are wall-clock, like bench_multicore).
  options.runtime = runtime::RuntimeKind::kThreads;

  core::SystemConfig base = harness::PaperConfig(core::Protocol::kDagWt);
  harness::ApplyOptions(options, &base);
  base.workload.backedge_prob = 0.0;
  base.workload.zipf_theta = 0.8;
  if (!options.txns_set) {
    // Wall-clock runs: keep each of the 12 cells inside a few seconds.
    base.workload.txns_per_thread = options.quick ? 40 : 150;
  }
  bench::PrintBanner(
      "secondary read serving: snapshot (MVCC) vs serializable (2PL) "
      "read-only throughput (docs/MVCC.md)",
      base, options);

  const std::vector<WorkloadCase> kCases = {
      {workload::WorkloadKind::kYcsbB, "ycsb_b"},
      {workload::WorkloadKind::kYcsbC, "ycsb_c"},
      {workload::WorkloadKind::kSmallBank, "smallbank"},
  };

  harness::Table table({"workload", "workers", "level", "tps", "read_tps",
                        "read_p99_ms", "lock_waits", "stale_ms", "speedup"},
                       options.csv);
  table.PrintHeader();
  for (const WorkloadCase& wc : kCases) {
    for (int workers : {1, 4}) {
      core::SystemConfig config = base;
      config.workload.workload = wc.kind;
      config.workers_per_site = workers;
      if (wc.kind == workload::WorkloadKind::kSmallBank) {
        // Balance-heavy SmallBank: 80% read-only Balance transactions,
        // native multi-op shapes.
        config.workload.read_txn_prob = 0.8;
      } else {
        // Standard YCSB issues each operation as its own request.
        config.workload.ops_per_txn = 1;
      }

      Arm ser = RunArm(config, storage::ConsistencyLevel::kSerializable,
                       options);
      Arm snap = RunArm(config, storage::ConsistencyLevel::kSnapshot,
                        options);
      double speedup =
          ser.read_tps > 0 ? snap.read_tps / ser.read_tps : 0;
      double waits_removed = ser.result.lock_waits - snap.result.lock_waits;

      const double w = static_cast<double>(workers);
      harness::AppendBenchJson(
          options.json, std::string("reads_") + wc.label,
          core::ProtocolName(config.protocol), options.runtime,
          {{"workers", w},
           {"theta", config.workload.zipf_theta},
           {"snapshot_level", 0}},
          ser.result);
      harness::AppendBenchJson(
          options.json, std::string("reads_") + wc.label,
          core::ProtocolName(config.protocol), options.runtime,
          {{"workers", w},
           {"theta", config.workload.zipf_theta},
           {"snapshot_level", 1},
           {"read_speedup", speedup},
           {"lock_waits_removed", waits_removed}},
          snap.result);

      for (const auto* arm : {&ser, &snap}) {
        bool is_snap = arm == &snap;
        table.PrintRow(
            {wc.label, std::to_string(workers),
             is_snap ? "snapshot" : "2pl",
             harness::Table::Num(arm->result.throughput),
             harness::Table::Num(arm->read_tps),
             harness::Table::Num(arm->read_p99_ms, 2),
             harness::Table::Num(arm->result.lock_waits),
             is_snap ? harness::Table::Num(arm->result.staleness_ms, 2)
                     : std::string("-"),
             is_snap ? harness::Table::Num(speedup, 2) + "x"
                     : std::string("-")});
      }
      if (!snap.result.all_snapshots_consistent) {
        std::printf("!! snapshot-consistency violation in %s workers=%d\n",
                    wc.label, workers);
        return 1;
      }
    }
  }
  return 0;
}
