// Reproduces Figure 3(a): throughput vs read-operation probability under
// the extreme setting b=0, r=0.5, read-transaction probability 0 (every
// transaction does updates).
//
// Paper shape: at read prob 0 PSL wins (it propagates nothing and runs
// fully locally, while BackEdge must push every update to replicas); the
// curves cross quickly, BackEdge peaks at ≈5x PSL around read prob 0.5,
// and PSL dips until ~0.5 before recovering as contention fades.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace lazyrep;
  harness::BenchOptions options = harness::ParseBenchArgs(argc, argv);

  core::SystemConfig base = harness::PaperConfig(core::Protocol::kBackEdge);
  harness::ApplyOptions(options, &base);
  base.workload.backedge_prob = 0.0;
  base.workload.replication_prob = 0.5;
  base.workload.read_txn_prob = 0.0;
  bench::PrintBanner(
      "Figure 3(a): throughput vs read-op probability (b=0, r=0.5, no "
      "read-only txns)",
      base, options);

  harness::Table table({"read_prob", "BackEdge_tps", "PSL_tps",
                        "BE_abort%", "PSL_abort%", "BE_SR", "PSL_SR"},
                       options.csv);
  table.PrintHeader();
  for (double p : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9,
                   1.0}) {
    core::SystemConfig be = base;
    be.protocol = core::Protocol::kBackEdge;
    be.workload.read_op_prob = p;
    harness::AggregateResult be_result =
        harness::RunSeeds(be, options.seeds);

    core::SystemConfig psl = base;
    psl.protocol = core::Protocol::kPsl;
    psl.workload.read_op_prob = p;
    harness::AggregateResult psl_result =
        harness::RunSeeds(psl, options.seeds);

    table.PrintRow({harness::Table::Num(p, 1),
                    harness::Table::Num(be_result.throughput),
                    harness::Table::Num(psl_result.throughput),
                    harness::Table::Num(be_result.abort_rate_pct),
                    harness::Table::Num(psl_result.abort_rate_pct),
                    be_result.all_serializable ? "yes" : "NO",
                    psl_result.all_serializable ? "yes" : "NO"});
  }
  return 0;
}
