// Extension ablation: batching secondary subtransactions (DAG(WT)).
// Buffering per tree child and shipping one message per window amortizes
// the dominant per-message CPU cost at the price of propagation delay —
// the classic lazy-replication throughput/recency dial the paper's
// future-work discussion gestures at. Forwarding order is preserved, so
// serializability is untouched (checked per run).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace lazyrep;
  harness::BenchOptions options = harness::ParseBenchArgs(argc, argv);

  core::SystemConfig base = harness::PaperConfig(core::Protocol::kDagWt);
  harness::ApplyOptions(options, &base);
  base.workload.backedge_prob = 0.0;
  base.workload.replication_prob = 0.5;  // Plenty of propagation traffic.
  bench::PrintBanner(
      "Ablation: DAG(WT) secondary batching — messages vs propagation "
      "delay",
      base, options);

  harness::Table table({"window_ms", "tps", "abort%", "msgs/txn",
                        "bytes/msg", "prop_ms", "SR"},
                       options.csv);
  table.PrintHeader();
  for (double window_ms : {0.0, 1.0, 5.0, 20.0, 50.0}) {
    core::SystemConfig config = base;
    config.engine.batch_window = Millis(window_ms);
    // Measure bytes-per-message from a single run's metrics.
    core::SystemConfig probe_config = config;
    auto probe = core::System::Create(probe_config);
    LAZYREP_CHECK(probe.ok());
    core::RunMetrics one = (*probe)->Run();
    double bytes_per_msg =
        one.messages > 0 ? static_cast<double>(one.bytes) /
                               static_cast<double>(one.messages)
                         : 0.0;

    harness::AggregateResult result =
        harness::RunSeeds(config, options.seeds);
    table.PrintRow({harness::Table::Num(window_ms, 0),
                    harness::Table::Num(result.throughput),
                    harness::Table::Num(result.abort_rate_pct),
                    harness::Table::Num(result.messages_per_txn),
                    harness::Table::Num(bytes_per_msg, 0),
                    harness::Table::Num(result.propagation_ms),
                    result.all_serializable ? "yes" : "NO"});
  }
  return 0;
}
