// Scale-out benchmark (docs/SCALE.md): setup cost, per-commit CPU, and
// peak memory as the copy graph grows to 100+ sites.
//
// The paper evaluates m = 9; ROADMAP item 4 asks what the protocols do
// on deep chains, d-ary trees, wide fans, and backedge-dense random
// graphs at 100+ sites. The historical blockers were quadratic
// bookkeeping, not the protocols: dense endpoints² channel state in the
// network, per-site O(items) placement scans in system assembly, and
// parent-walk ancestor tests in routing. This bench pins the fix:
//
//   1. Site scaling — deep chain at m ∈ {9, 32, 64, 128} × protocol.
//      `setup_cpu_us` must grow ~linearly in m (it was quadratic) and
//      `setup_full_scans` must stay 0 (the one-pass placement indices).
//   2. Family atlas at m = 128 — chain / tree / fan / random, DAG
//      protocols on the acyclic families, BackEdge and PSL also on the
//      cyclic rand:128,0.10.
//
// `maxrss_mb` is the process-wide peak (getrusage ru_maxrss), so it is
// monotone across cells; cells run smallest-m first so growth per m is
// visible. JSON rows land in --json=PATH with bench="scale_<family>";
// the committed artifact is BENCH_scale.json at the repo root.

#include <sys/resource.h>

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "graph/copy_graph.h"
#include "workload/params.h"

namespace {

using namespace lazyrep;

double ProcessCpuSeconds() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  auto seconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return seconds(ru.ru_utime) + seconds(ru.ru_stime);
}

double PeakRssMb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // KiB on Linux.
}

constexpr core::Protocol kProtocols[] = {
    core::Protocol::kDagWt, core::Protocol::kDagT,
    core::Protocol::kBackEdge, core::Protocol::kPsl};

struct Cell {
  harness::AggregateResult result;
  double cpu_us_per_commit = 0;
  double setup_cpu_us = 0;
  double setup_full_scans = 0;
  double maxrss_mb = 0;
};

Cell RunCell(core::SystemConfig config, const harness::BenchOptions& options) {
  Cell cell;
  // Setup cost, measured on a throwaway assembly: topology + placement
  // generation, routing, and per-site database construction — the part
  // that used to be quadratic in m. The scan counter proves assembly
  // uses the one-pass per-site indices.
  {
    const long scans_before = graph::Placement::FullScanCount();
    const double cpu_before = ProcessCpuSeconds();
    Result<std::unique_ptr<core::System>> system =
        core::System::Create(config);
    LAZYREP_CHECK(system.ok()) << system.status().ToString();
    cell.setup_cpu_us = (ProcessCpuSeconds() - cpu_before) * 1e6;
    cell.setup_full_scans = static_cast<double>(
        graph::Placement::FullScanCount() - scans_before);
  }
  const double cpu_before = ProcessCpuSeconds();
  cell.result = harness::RunSeeds(config, options.seeds);
  const double cpu_spent = ProcessCpuSeconds() - cpu_before;
  cell.cpu_us_per_commit =
      cell.result.committed > 0
          ? cpu_spent * 1e6 / static_cast<double>(cell.result.committed)
          : 0;
  cell.maxrss_mb = PeakRssMb();
  return cell;
}

std::string FamilyOf(const std::string& topology) {
  return topology.substr(0, topology.find(':'));
}

void EmitRow(const harness::BenchOptions& options,
             const core::SystemConfig& config, const std::string& topology,
             const Cell& cell) {
  harness::AppendBenchJson(
      options.json, "scale_" + FamilyOf(topology),
      core::ProtocolName(config.protocol), options.runtime,
      {{"sites", static_cast<double>(config.workload.num_sites)},
       {"items", static_cast<double>(config.workload.num_items)},
       {"rf", static_cast<double>(config.workload.replication_factor)},
       {"setup_cpu_us", cell.setup_cpu_us},
       {"setup_full_scans", cell.setup_full_scans},
       {"cpu_us_per_commit", cell.cpu_us_per_commit},
       {"maxrss_mb", cell.maxrss_mb}},
      cell.result);
}

void PrintCell(harness::Table& table, const std::string& topology,
               const core::SystemConfig& config, const Cell& cell) {
  table.PrintRow({topology, core::ProtocolName(config.protocol),
                  harness::Table::Num(cell.setup_cpu_us),
                  harness::Table::Num(cell.setup_full_scans, 0),
                  harness::Table::Num(cell.result.throughput),
                  harness::Table::Num(cell.cpu_us_per_commit),
                  harness::Table::Num(cell.result.messages_per_txn),
                  harness::Table::Num(cell.maxrss_mb),
                  cell.result.all_serializable ? "yes" : "NO",
                  cell.result.all_converged ? "yes" : "NO"});
}

}  // namespace

int main(int argc, char** argv) {
  harness::BenchOptions options = harness::ParseBenchArgs(argc, argv);

  core::SystemConfig base = harness::PaperConfig(core::Protocol::kDagT);
  harness::ApplyOptions(options, &base);
  if (!options.txns_set) {
    // Event counts scale with m; keep 128-site cells inside seconds.
    base.workload.txns_per_thread = options.quick ? 10 : 40;
  }
  bench::PrintBanner(
      "scale-out: setup cost, per-commit CPU and peak memory on "
      "100+ site topologies (docs/SCALE.md)",
      base, options);

  const std::vector<int> kSites =
      options.quick ? std::vector<int>{9, 32} : std::vector<int>{9, 32, 64,
                                                                 128};
  const char* kHeader[] = {"topology",      "protocol", "setup_us",
                           "setup_scans",   "tps",      "cpu_us/commit",
                           "msgs/txn",      "maxrss_mb", "SR",
                           "conv"};

  // --- Grid 1: deep-chain site scaling --------------------------------
  {
    harness::Table table(
        std::vector<std::string>(kHeader, kHeader + 10), options.csv);
    table.PrintHeader();
    for (int sites : kSites) {
      const std::string topology = "chain:" + std::to_string(sites);
      for (core::Protocol protocol : kProtocols) {
        core::SystemConfig config = base;
        config.protocol = protocol;
        harness::ApplyTopology(topology, options.replication_factor,
                               &config.workload);
        Cell cell = RunCell(config, options);
        EmitRow(options, config, topology, cell);
        PrintCell(table, topology, config, cell);
      }
    }
  }

  // --- Grid 2: topology families at the largest m ---------------------
  {
    const int m = kSites.back();
    std::printf("\n# topology families at m=%d\n", m);
    harness::Table table(
        std::vector<std::string>(kHeader, kHeader + 10), options.csv);
    table.PrintHeader();
    const std::string n = std::to_string(m);
    struct FamilyCase {
      std::string topology;
      bool cyclic;
    };
    const std::vector<FamilyCase> kFamilies = {
        {"tree:" + n + ",4", false},
        {"fan:" + n, false},
        {"rand:" + n + ",0", false},
        {"rand:" + n + ",0.10", true},  // BackEdge / PSL only.
    };
    for (const FamilyCase& family : kFamilies) {
      for (core::Protocol protocol : kProtocols) {
        if (family.cyclic && (protocol == core::Protocol::kDagWt ||
                              protocol == core::Protocol::kDagT)) {
          continue;  // DAG protocols need an acyclic copy graph.
        }
        core::SystemConfig config = base;
        config.protocol = protocol;
        harness::ApplyTopology(family.topology, options.replication_factor,
                               &config.workload);
        Cell cell = RunCell(config, options);
        EmitRow(options, config, family.topology, cell);
        PrintCell(table, family.topology, config, cell);
      }
    }
  }
  return 0;
}
