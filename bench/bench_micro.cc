// Substrate microbenchmarks (google-benchmark): the data-structure and
// event-loop costs underlying the protocol simulations. Not a paper
// figure; used to keep the simulator fast enough for full Table 1 scale.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/history.h"
#include "core/messages.h"
#include "core/timestamp.h"
#include "core/wire.h"
#include "graph/copy_graph.h"
#include "graph/feedback_arc_set.h"
#include "graph/tree.h"
#include "net/network.h"
#include "obs/registry.h"
#include "runtime/sim_runtime.h"
#include "runtime/thread_runtime.h"
#include "sim/primitives.h"
#include "sim/simulator.h"
#include "storage/lock_manager.h"
#include "workload/generator.h"

namespace lazyrep {
namespace {

void BM_TimestampCompare(benchmark::State& state) {
  core::Timestamp a, b;
  for (int s = 0; s < state.range(0); ++s) {
    a = a.ExtendedWith(s, s * 3, 0);
    b = b.ExtendedWith(s, s == state.range(0) / 2 ? s * 3 + 1 : s * 3, 0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Timestamp::Compare(a, b));
  }
}
BENCHMARK(BM_TimestampCompare)->Arg(2)->Arg(8)->Arg(16);

void BM_TimestampExtend(benchmark::State& state) {
  core::Timestamp base;
  for (int s = 0; s < 8; ++s) base = base.ExtendedWith(s, s, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.ExtendedWith(9, 1, 0));
  }
}
BENCHMARK(BM_TimestampExtend);

void BM_SimulatorEventLoop(benchmark::State& state) {
  // Cost of scheduling + dispatching one Delay event.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    int64_t n = state.range(0);
    sim.Spawn([](sim::Simulator* s, int64_t count) -> sim::Co<void> {
      for (int64_t i = 0; i < count; ++i) co_await s->Delay(1);
    }(&sim, n));
    state.ResumeTiming();
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorEventLoop)->Arg(10000);

void BM_LockAcquireRelease(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    runtime::SimRuntime rt;
    storage::LockManager locks(&rt, {});
    auto txn = std::make_shared<storage::Transaction>(
        GlobalTxnId{0, 1}, storage::TxnKind::kPrimary, 0, 0);
    int64_t n = state.range(0);
    state.ResumeTiming();
    rt.Spawn([](storage::LockManager* lm, storage::TxnPtr t,
                int64_t count) -> runtime::Co<void> {
      for (int64_t i = 0; i < count; ++i) {
        (void)co_await lm->Acquire(t.get(), static_cast<ItemId>(i % 64),
                                   storage::LockMode::kExclusive);
        lm->ReleaseAll(t.get());
      }
    }(&locks, txn, n));
    rt.simulator()->Run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LockAcquireRelease)->Arg(10000);

void BM_PlacementAndCopyGraph(benchmark::State& state) {
  workload::Params params;
  params.num_items = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Rng rng(7);
    graph::Placement p = workload::GeneratePlacement(params, &rng);
    graph::CopyGraph g = graph::CopyGraph::FromPlacement(p);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_PlacementAndCopyGraph)->Arg(200)->Arg(2000);

void BM_GreedyFeedbackArcSet(benchmark::State& state) {
  Rng rng(11);
  graph::CopyGraph g(static_cast<int>(state.range(0)));
  for (SiteId a = 0; a < g.num_sites(); ++a) {
    for (SiteId b = 0; b < g.num_sites(); ++b) {
      if (a != b && rng.Bernoulli(0.3)) g.AddEdge(a, b);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::GreedyFeedbackArcSet(g));
  }
}
BENCHMARK(BM_GreedyFeedbackArcSet)->Arg(9)->Arg(15);

void BM_SerializabilityCheck(benchmark::State& state) {
  // Synthetic history: `n` transactions touching overlapping items at 9
  // sites.
  core::HistoryRecorder recorder;
  Rng rng(13);
  int64_t n = state.range(0);
  std::map<SiteId, int64_t> seq;
  for (int64_t i = 0; i < n; ++i) {
    core::HistoryRecorder::Record r;
    r.site = static_cast<SiteId>(rng.Below(9));
    r.origin = GlobalTxnId{r.site, i};
    r.commit_seq = seq[r.site]++;
    for (int k = 0; k < 7; ++k) {
      r.reads.insert(static_cast<ItemId>(rng.Below(200)));
    }
    for (int k = 0; k < 3; ++k) {
      r.writes.insert(static_cast<ItemId>(rng.Below(200)));
    }
    recorder.AddRecord(std::move(r));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::CheckSerializability(recorder));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SerializabilityCheck)->Arg(1000)->Arg(10000);

void BM_TreeBuild(benchmark::State& state) {
  Rng rng(17);
  graph::CopyGraph dag(static_cast<int>(state.range(0)));
  for (SiteId a = 0; a < dag.num_sites(); ++a) {
    for (SiteId b = a + 1; b < dag.num_sites(); ++b) {
      if (rng.Bernoulli(0.3)) dag.AddEdge(a, b);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::BuildGreedyTree(dag));
  }
}
BENCHMARK(BM_TreeBuild)->Arg(15);

// ---- message hot path (wire codec, network bookkeeping, executor
// injection) — the BENCH_hotpath.json cases -----------------------------

/// A representative DAG(T) secondary: 3 writes, a 3-tuple timestamp —
/// the payload shape that dominates Table 1 traffic.
core::ProtocolMessage SampleSecondary() {
  core::SecondaryUpdate u;
  u.origin = GlobalTxnId{3, 12345};
  u.origin_site = 3;
  u.origin_commit_time = Millis(123.456);
  u.writes = {{7, 111}, {42, -5}, {199, int64_t{1} << 30}};
  u.ts = core::Timestamp::Initial(0).ExtendedWith(2, 9, 0).ExtendedWith(
      5, 1, 0);
  return u;
}

void BM_WireEncode(benchmark::State& state) {
  core::ProtocolMessage msg = SampleSecondary();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Wire::Encode(msg));
  }
}
BENCHMARK(BM_WireEncode);

void BM_WireEncodeReliableFrame(benchmark::State& state) {
  // The ReliableTransport send path: encode the inner message, wrap it
  // in a sequenced ReliableData frame, encode the frame for the wire.
  core::ProtocolMessage msg = SampleSecondary();
  for (auto _ : state) {
    core::ReliableData data;
    data.seq = 42;
    data.inner = core::Wire::Encode(msg);
    benchmark::DoNotOptimize(
        core::Wire::Encode(core::ProtocolMessage(std::move(data))));
  }
}
BENCHMARK(BM_WireEncodeReliableFrame);

void BM_WireDecode(benchmark::State& state) {
  std::vector<uint8_t> bytes = core::Wire::Encode(SampleSecondary());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Wire::Decode(bytes));
  }
}
BENCHMARK(BM_WireDecode);

void BM_WireDecodeReliableData(benchmark::State& state) {
  core::ReliableData data;
  data.seq = 42;
  data.inner = core::Wire::Encode(SampleSecondary());
  std::vector<uint8_t> bytes =
      core::Wire::Encode(core::ProtocolMessage(std::move(data)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Wire::Decode(bytes));
  }
}
BENCHMARK(BM_WireDecodeReliableData);

void BM_NetworkPostDeliver(benchmark::State& state) {
  // Full Post -> Dispatch -> Deliver -> handler path under SimRuntime
  // with the production configuration: sizer, per-kind metrics, jitter
  // and point-to-point bandwidth (the per-channel link path).
  using Net = net::Network<core::ProtocolMessage>;
  const int64_t n = state.range(0);
  core::ProtocolMessage msg = SampleSecondary();
  for (auto _ : state) {
    state.PauseTiming();
    runtime::SimRuntime rt;
    obs::MetricsRegistry registry;
    Net::Config cfg;
    cfg.jitter = Micros(20);
    cfg.bandwidth_bytes_per_sec = 1250000;
    cfg.shared_medium = false;
    Net net(&rt, 4, cfg, {nullptr, nullptr, nullptr, nullptr}, Rng(1));
    net.SetSizer([](const core::ProtocolMessage& m) {
      return core::Wire::EncodedSize(m);
    });
    net.SetMetrics(&registry, core::kNumMessageMetricKinds,
                   core::MessageMetricKind, [](int kind) {
                     return std::string(core::MessageMetricKindName(kind));
                   });
    int64_t handled = 0;
    net.SetHandler(3, [&handled](Net::Envelope) { ++handled; });
    state.ResumeTiming();
    for (int64_t i = 0; i < n; ++i) {
      net.Post(static_cast<SiteId>(i % 3), 3, msg);
    }
    rt.simulator()->Run();
    benchmark::DoNotOptimize(handled);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NetworkPostDeliver)->Arg(4096);

void BM_CrossMachineEnqueue(benchmark::State& state) {
  // ThreadRuntime cross-machine scheduling: machine 0 floods machine 1
  // with timed callbacks (the network-delivery pattern) while machine
  // 1's run loop drains them.
  const int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    runtime::ThreadRuntime rt(2);
    std::atomic<int64_t> delivered{0};
    rt.Start();
    state.ResumeTiming();
    rt.ScheduleCallbackOn(0, 0, [&rt, &delivered, n] {
      for (int64_t i = 0; i < n; ++i) {
        rt.ScheduleCallbackAtOn(1, rt.Now(), [&delivered] {
          delivered.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
    while (delivered.load(std::memory_order_acquire) < n) {
      std::this_thread::yield();
    }
    state.PauseTiming();
    rt.Shutdown();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
// Wall-clock: the work happens on the executor threads, not the driver.
BENCHMARK(BM_CrossMachineEnqueue)->Arg(20000)->UseRealTime();

}  // namespace
}  // namespace lazyrep

// Custom main instead of BENCHMARK_MAIN(): translate the repo-wide
// `--json=PATH` convention (shared with the protocol benches) into
// google-benchmark's native JSON reporter flags before initialization.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag, format_flag;
  for (auto it = args.begin(); it != args.end(); ++it) {
    constexpr const char* kJson = "--json=";
    if (std::strncmp(*it, kJson, std::strlen(kJson)) == 0) {
      out_flag = std::string("--benchmark_out=") + (*it + std::strlen(kJson));
      format_flag = "--benchmark_out_format=json";
      it = args.erase(it);
      args.push_back(out_flag.data());
      args.push_back(format_flag.data());
      break;
    }
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
