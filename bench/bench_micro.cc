// Substrate microbenchmarks (google-benchmark): the data-structure and
// event-loop costs underlying the protocol simulations. Not a paper
// figure; used to keep the simulator fast enough for full Table 1 scale.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/history.h"
#include "core/timestamp.h"
#include "graph/copy_graph.h"
#include "graph/feedback_arc_set.h"
#include "graph/tree.h"
#include "runtime/sim_runtime.h"
#include "sim/primitives.h"
#include "sim/simulator.h"
#include "storage/lock_manager.h"
#include "workload/generator.h"

namespace lazyrep {
namespace {

void BM_TimestampCompare(benchmark::State& state) {
  core::Timestamp a, b;
  for (int s = 0; s < state.range(0); ++s) {
    a = a.ExtendedWith(s, s * 3, 0);
    b = b.ExtendedWith(s, s == state.range(0) / 2 ? s * 3 + 1 : s * 3, 0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Timestamp::Compare(a, b));
  }
}
BENCHMARK(BM_TimestampCompare)->Arg(2)->Arg(8)->Arg(16);

void BM_TimestampExtend(benchmark::State& state) {
  core::Timestamp base;
  for (int s = 0; s < 8; ++s) base = base.ExtendedWith(s, s, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.ExtendedWith(9, 1, 0));
  }
}
BENCHMARK(BM_TimestampExtend);

void BM_SimulatorEventLoop(benchmark::State& state) {
  // Cost of scheduling + dispatching one Delay event.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    int64_t n = state.range(0);
    sim.Spawn([](sim::Simulator* s, int64_t count) -> sim::Co<void> {
      for (int64_t i = 0; i < count; ++i) co_await s->Delay(1);
    }(&sim, n));
    state.ResumeTiming();
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorEventLoop)->Arg(10000);

void BM_LockAcquireRelease(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    runtime::SimRuntime rt;
    storage::LockManager locks(&rt, {});
    auto txn = std::make_shared<storage::Transaction>(
        GlobalTxnId{0, 1}, storage::TxnKind::kPrimary, 0, 0);
    int64_t n = state.range(0);
    state.ResumeTiming();
    rt.Spawn([](storage::LockManager* lm, storage::TxnPtr t,
                int64_t count) -> runtime::Co<void> {
      for (int64_t i = 0; i < count; ++i) {
        (void)co_await lm->Acquire(t.get(), static_cast<ItemId>(i % 64),
                                   storage::LockMode::kExclusive);
        lm->ReleaseAll(t.get());
      }
    }(&locks, txn, n));
    rt.simulator()->Run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LockAcquireRelease)->Arg(10000);

void BM_PlacementAndCopyGraph(benchmark::State& state) {
  workload::Params params;
  params.num_items = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Rng rng(7);
    graph::Placement p = workload::GeneratePlacement(params, &rng);
    graph::CopyGraph g = graph::CopyGraph::FromPlacement(p);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_PlacementAndCopyGraph)->Arg(200)->Arg(2000);

void BM_GreedyFeedbackArcSet(benchmark::State& state) {
  Rng rng(11);
  graph::CopyGraph g(static_cast<int>(state.range(0)));
  for (SiteId a = 0; a < g.num_sites(); ++a) {
    for (SiteId b = 0; b < g.num_sites(); ++b) {
      if (a != b && rng.Bernoulli(0.3)) g.AddEdge(a, b);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::GreedyFeedbackArcSet(g));
  }
}
BENCHMARK(BM_GreedyFeedbackArcSet)->Arg(9)->Arg(15);

void BM_SerializabilityCheck(benchmark::State& state) {
  // Synthetic history: `n` transactions touching overlapping items at 9
  // sites.
  core::HistoryRecorder recorder;
  Rng rng(13);
  int64_t n = state.range(0);
  std::map<SiteId, int64_t> seq;
  for (int64_t i = 0; i < n; ++i) {
    core::HistoryRecorder::Record r;
    r.site = static_cast<SiteId>(rng.Below(9));
    r.origin = GlobalTxnId{r.site, i};
    r.commit_seq = seq[r.site]++;
    for (int k = 0; k < 7; ++k) {
      r.reads.insert(static_cast<ItemId>(rng.Below(200)));
    }
    for (int k = 0; k < 3; ++k) {
      r.writes.insert(static_cast<ItemId>(rng.Below(200)));
    }
    recorder.AddRecord(std::move(r));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::CheckSerializability(recorder));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SerializabilityCheck)->Arg(1000)->Arg(10000);

void BM_TreeBuild(benchmark::State& state) {
  Rng rng(17);
  graph::CopyGraph dag(static_cast<int>(state.range(0)));
  for (SiteId a = 0; a < dag.num_sites(); ++a) {
    for (SiteId b = a + 1; b < dag.num_sites(); ++b) {
      if (rng.Bernoulli(0.3)) dag.AddEdge(a, b);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::BuildGreedyTree(dag));
  }
}
BENCHMARK(BM_TreeBuild)->Arg(15);

}  // namespace
}  // namespace lazyrep

// Custom main instead of BENCHMARK_MAIN(): translate the repo-wide
// `--json=PATH` convention (shared with the protocol benches) into
// google-benchmark's native JSON reporter flags before initialization.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag, format_flag;
  for (auto it = args.begin(); it != args.end(); ++it) {
    constexpr const char* kJson = "--json=";
    if (std::strncmp(*it, kJson, std::strlen(kJson)) == 0) {
      out_flag = std::string("--benchmark_out=") + (*it + std::strlen(kJson));
      format_flag = "--benchmark_out_format=json";
      it = args.erase(it);
      args.push_back(out_flag.data());
      args.push_back(format_flag.data());
      break;
    }
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
