#ifndef LAZYREP_BENCH_BENCH_COMMON_H_
#define LAZYREP_BENCH_BENCH_COMMON_H_

#include <cstdio>

#include "harness/experiment.h"

namespace lazyrep::bench {

/// Prints the standard bench banner: what is being reproduced and the
/// Table 1 parameters in effect.
inline void PrintBanner(const char* title, const core::SystemConfig& config,
                        const harness::BenchOptions& options) {
  std::printf("# %s\n", title);
  std::printf("# params: %s\n", config.workload.ToString().c_str());
  std::printf("# txns/thread=%d seeds=%d runtime=%s%s\n",
              options.txns_per_thread, options.seeds,
              runtime::RuntimeKindName(config.runtime),
              options.quick ? " (quick mode; use --full for paper scale)"
                            : "");
  if (config.runtime == runtime::RuntimeKind::kThreads) {
    std::printf("# threads runtime: metrics are wall-clock measurements "
                "and vary run to run\n");
  }
}

}  // namespace lazyrep::bench

#endif  // LAZYREP_BENCH_BENCH_COMMON_H_
