// Ablation for §3's motivation: DAG(WT) routes secondary subtransactions
// through intermediate tree sites (messaging overhead + propagation
// delay), while DAG(T) sends them directly along copy-graph edges at the
// price of timestamp/dummy machinery. Requires an acyclic copy graph
// (b = 0). Reported: throughput, messages per transaction (dummies
// included for DAG(T) — the cost of its progress mechanism), and the
// time for updates to reach all replicas.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace lazyrep;
  harness::BenchOptions options = harness::ParseBenchArgs(argc, argv);

  core::SystemConfig base = harness::PaperConfig(core::Protocol::kDagWt);
  harness::ApplyOptions(options, &base);
  base.workload.backedge_prob = 0.0;
  bench::PrintBanner(
      "Ablation: DAG(WT) vs DAG(T) — relayed vs direct propagation (b=0)",
      base, options);

  harness::Table table({"r", "DAGWT_tps", "DAGT_tps", "DAGWT_msgs/txn",
                        "DAGT_msgs/txn", "DAGWT_prop_ms", "DAGT_prop_ms",
                        "WT_SR", "T_SR"},
                       options.csv);
  table.PrintHeader();
  for (double r : {0.1, 0.2, 0.4, 0.6, 0.8}) {
    core::SystemConfig wt = base;
    wt.protocol = core::Protocol::kDagWt;
    wt.workload.replication_prob = r;
    harness::AggregateResult wt_result =
        harness::RunSeeds(wt, options.seeds);

    core::SystemConfig t = base;
    t.protocol = core::Protocol::kDagT;
    t.workload.replication_prob = r;
    harness::AggregateResult t_result = harness::RunSeeds(t, options.seeds);

    table.PrintRow({harness::Table::Num(r, 1),
                    harness::Table::Num(wt_result.throughput),
                    harness::Table::Num(t_result.throughput),
                    harness::Table::Num(wt_result.messages_per_txn),
                    harness::Table::Num(t_result.messages_per_txn),
                    harness::Table::Num(wt_result.propagation_ms),
                    harness::Table::Num(t_result.propagation_ms),
                    wt_result.all_serializable ? "yes" : "NO",
                    t_result.all_serializable ? "yes" : "NO"});
  }
  return 0;
}
