// Table 1 lists 1-5 threads per site as the explored multiprogramming
// range (full sweep in [BKRSS98]): throughput of BackEdge and PSL as the
// per-site thread count grows. Expected shape: throughput rises with
// moderate multiprogramming, then contention (lock waits, deadlock
// timeouts) flattens or reverses it; BackEdge stays ahead.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace lazyrep;
  harness::BenchOptions options = harness::ParseBenchArgs(argc, argv);

  core::SystemConfig base = harness::PaperConfig(core::Protocol::kBackEdge);
  harness::ApplyOptions(options, &base);
  bench::PrintBanner(
      "[BKRSS98] sweep: throughput vs threads per site (multiprogramming)",
      base, options);

  harness::Table table({"threads", "BackEdge_tps", "PSL_tps", "BE_abort%",
                        "PSL_abort%", "BE_resp_ms", "PSL_resp_ms"},
                       options.csv);
  table.PrintHeader();
  for (int threads : {1, 2, 3, 4, 5}) {
    core::SystemConfig be = base;
    be.protocol = core::Protocol::kBackEdge;
    be.workload.threads_per_site = threads;
    harness::AggregateResult be_result =
        harness::RunSeeds(be, options.seeds);

    core::SystemConfig psl = base;
    psl.protocol = core::Protocol::kPsl;
    psl.workload.threads_per_site = threads;
    harness::AggregateResult psl_result =
        harness::RunSeeds(psl, options.seeds);

    table.PrintRow({std::to_string(threads),
                    harness::Table::Num(be_result.throughput),
                    harness::Table::Num(psl_result.throughput),
                    harness::Table::Num(be_result.abort_rate_pct),
                    harness::Table::Num(psl_result.abort_rate_pct),
                    harness::Table::Num(be_result.response_ms),
                    harness::Table::Num(psl_result.response_ms)});
  }
  return 0;
}
