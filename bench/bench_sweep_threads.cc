// Table 1 lists 1-5 threads per site as the explored multiprogramming
// range (full sweep in [BKRSS98]): throughput of BackEdge and PSL as the
// per-site thread count grows. Expected shape: throughput rises with
// moderate multiprogramming, then contention (lock waits, deadlock
// timeouts) flattens or reverses it; BackEdge stays ahead.

#include "bench/bench_common.h"

namespace {

// Machine-scaling mode (--runtime=threads): the same 4-site BackEdge
// workload placed on 1, 2, and 4 machines (sites_per_machine 4 -> 1).
// Under the threads backend each machine is an OS thread and a CPU
// charge occupies its machine's CPU for real time, so splitting the
// sites across more machines must raise measured throughput (>1x from
// 1 to 4 machines) — that is the parallelism the backend exists to
// demonstrate.
int RunMachineScaling(const lazyrep::harness::BenchOptions& options) {
  using namespace lazyrep;
  core::SystemConfig base = harness::PaperConfig(core::Protocol::kBackEdge);
  harness::ApplyOptions(options, &base);
  base.workload.num_sites = 4;
  base.workload.threads_per_site = 2;
  if (!options.txns_set) {
    // Wall-clock runs pay real milliseconds per transaction; keep the
    // default sweep under a minute.
    base.workload.txns_per_thread = 30;
  }
  bench::PrintBanner(
      "threads-runtime scaling: measured throughput vs machines "
      "(4 sites, BackEdge)",
      base, options);

  harness::Table table({"machines", "sites/machine", "tps", "speedup",
                        "abort%", "SR", "converged"},
                       options.csv);
  table.PrintHeader();
  double base_tps = 0;
  for (int spm : {4, 2, 1}) {
    core::SystemConfig config = base;
    config.workload.sites_per_machine = spm;
    int machines = (config.workload.num_sites + spm - 1) / spm;
    harness::AggregateResult result =
        harness::RunSeeds(config, options.seeds);
    if (base_tps == 0) base_tps = result.throughput;
    double speedup = base_tps > 0 ? result.throughput / base_tps : 0;
    harness::AppendBenchJson(
        options.json, "sweep_threads_scaling", "BackEdge", options.runtime,
        {{"machines", static_cast<double>(machines)},
         {"sites_per_machine", static_cast<double>(spm)},
         {"speedup", speedup}},
        result);
    table.PrintRow({std::to_string(machines), std::to_string(spm),
                    harness::Table::Num(result.throughput),
                    harness::Table::Num(speedup),
                    harness::Table::Num(result.abort_rate_pct),
                    result.all_serializable ? "yes" : "NO",
                    result.all_converged ? "yes" : "NO"});
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lazyrep;
  harness::BenchOptions options = harness::ParseBenchArgs(argc, argv);
  if (options.runtime == runtime::RuntimeKind::kThreads) {
    return RunMachineScaling(options);
  }

  core::SystemConfig base = harness::PaperConfig(core::Protocol::kBackEdge);
  harness::ApplyOptions(options, &base);
  bench::PrintBanner(
      "[BKRSS98] sweep: throughput vs threads per site (multiprogramming)",
      base, options);

  harness::Table table({"threads", "BackEdge_tps", "PSL_tps", "BE_abort%",
                        "PSL_abort%", "BE_resp_ms", "PSL_resp_ms"},
                       options.csv);
  table.PrintHeader();
  for (int threads : {1, 2, 3, 4, 5}) {
    core::SystemConfig be = base;
    be.protocol = core::Protocol::kBackEdge;
    be.workload.threads_per_site = threads;
    harness::AggregateResult be_result =
        harness::RunSeeds(be, options.seeds);

    core::SystemConfig psl = base;
    psl.protocol = core::Protocol::kPsl;
    psl.workload.threads_per_site = threads;
    harness::AggregateResult psl_result =
        harness::RunSeeds(psl, options.seeds);

    harness::AppendBenchJson(
        options.json, "sweep_threads", "BackEdge", options.runtime,
        {{"threads", static_cast<double>(threads)}}, be_result);
    harness::AppendBenchJson(
        options.json, "sweep_threads", "PSL", options.runtime,
        {{"threads", static_cast<double>(threads)}}, psl_result);

    table.PrintRow({std::to_string(threads),
                    harness::Table::Num(be_result.throughput),
                    harness::Table::Num(psl_result.throughput),
                    harness::Table::Num(be_result.abort_rate_pct),
                    harness::Table::Num(psl_result.abort_rate_pct),
                    harness::Table::Num(be_result.response_ms),
                    harness::Table::Num(psl_result.response_ms)});
  }
  return 0;
}
