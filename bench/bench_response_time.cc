// Reproduces the §5.3.4 text metrics at the Table 1 defaults:
//  * average response time of committed transactions — the paper reports
//    ≈180 ms for BackEdge vs ≈260 ms for PSL (ratio ≈ 0.7);
//  * update-propagation recency for BackEdge — "a few hundred millisec"
//    for a transaction's updates to reach all replicas.
// Absolute milliseconds differ from the 1999 testbed; the BackEdge/PSL
// response ratio and the propagation order-of-magnitude are the targets.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace lazyrep;
  harness::BenchOptions options = harness::ParseBenchArgs(argc, argv);

  core::SystemConfig base = harness::PaperConfig(core::Protocol::kBackEdge);
  harness::ApplyOptions(options, &base);
  bench::PrintBanner("Section 5.3.4: response time and propagation recency "
                     "(Table 1 defaults)",
                     base, options);

  harness::Table table({"protocol", "tps", "abort%", "response_ms",
                        "resp_p95_ms", "propagation_ms", "msgs/txn",
                        "SR"},
                       options.csv);
  table.PrintHeader();
  for (core::Protocol protocol :
       {core::Protocol::kBackEdge, core::Protocol::kPsl}) {
    core::SystemConfig config = base;
    config.protocol = protocol;
    harness::AggregateResult result =
        harness::RunSeeds(config, options.seeds);
    harness::AppendBenchJson(options.json, "response_time",
                             core::ProtocolName(protocol), options.runtime,
                             {}, result);
    table.PrintRow({core::ProtocolName(protocol),
                    harness::Table::Num(result.throughput),
                    harness::Table::Num(result.abort_rate_pct),
                    harness::Table::Num(result.response_ms),
                    harness::Table::Num(result.response_p95_ms),
                    protocol == core::Protocol::kPsl
                        ? "n/a"
                        : harness::Table::Num(result.propagation_ms),
                    harness::Table::Num(result.messages_per_txn),
                    result.all_serializable ? "yes" : "NO"});
  }
  return 0;
}
