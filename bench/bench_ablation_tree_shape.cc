// Ablation for §5.1's remark that the implemented chain tree is weaker
// than a general tree: DAG(WT) with the chain tree (the paper's
// implementation) vs the greedy branching tree.
//
// On the §5.2 generated placements the copy graph is dense enough that
// the greedy tree degenerates to the chain, so this ablation uses a
// warehouse-style hierarchy (§1's motivating DAG): a random out-tree of
// sites where each site's items are replicated into its subtree. There
// the branching tree propagates directly down the hierarchy while the
// chain relays through unrelated sites — fewer relayed messages and a
// much shorter time for updates to reach all replicas.

#include <vector>

#include "bench/bench_common.h"

namespace {

using namespace lazyrep;

// Random out-tree over `m` sites; each site owns `items_per_site` items,
// each replicated at every site of a random subtree-path below it.
graph::Placement HierarchyPlacement(int m, int items_per_site, Rng* rng) {
  std::vector<SiteId> parent(m, kInvalidSite);
  std::vector<std::vector<SiteId>> children(m);
  for (SiteId v = 1; v < m; ++v) {
    parent[v] = static_cast<SiteId>(rng->Below(v));  // Random earlier site.
    children[parent[v]].push_back(v);
  }
  graph::Placement p;
  p.num_sites = m;
  p.num_items = m * items_per_site;
  p.primary.resize(p.num_items);
  p.replicas.resize(p.num_items);
  for (ItemId i = 0; i < p.num_items; ++i) {
    SiteId owner = i / items_per_site;
    p.primary[i] = owner;
    // Replicate into the subtree: walk random child chains.
    if (!children[owner].empty() && rng->Bernoulli(0.6)) {
      SiteId v = owner;
      while (!children[v].empty() && rng->Bernoulli(0.8)) {
        v = children[v][rng->Index(children[v].size())];
        p.replicas[i].push_back(v);
      }
      std::sort(p.replicas[i].begin(), p.replicas[i].end());
      p.replicas[i].erase(
          std::unique(p.replicas[i].begin(), p.replicas[i].end()),
          p.replicas[i].end());
    }
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  harness::BenchOptions options = harness::ParseBenchArgs(argc, argv);

  core::SystemConfig base = harness::PaperConfig(core::Protocol::kDagWt);
  harness::ApplyOptions(options, &base);
  Rng topo_rng(4242);
  base.workload.num_sites = 12;
  base.workload.sites_per_machine = 3;
  base.workload.num_items = 12 * 18;
  base.placement = HierarchyPlacement(12, 18, &topo_rng);
  bench::PrintBanner(
      "Ablation: DAG(WT) propagation tree shape on a 12-site hierarchy — "
      "chain (paper impl) vs greedy branching tree",
      base, options);

  harness::Table table({"tree", "depth", "tps", "abort%", "msgs/txn",
                        "prop_ms", "SR"},
                       options.csv);
  table.PrintHeader();
  for (core::TreeKind kind :
       {core::TreeKind::kChain, core::TreeKind::kGreedy}) {
    core::SystemConfig config = base;
    config.engine.tree = kind;
    // Report the tree depth for context.
    auto routing = core::Routing::Build(*config.placement, config.protocol,
                                        config.engine);
    LAZYREP_CHECK(routing.ok());
    int depth = 0;
    for (SiteId s = 0; s < config.workload.num_sites; ++s) {
      depth = std::max(depth, (*routing)->tree()->Depth(s));
    }
    harness::AggregateResult result =
        harness::RunSeeds(config, options.seeds);
    table.PrintRow({kind == core::TreeKind::kChain ? "chain" : "greedy",
                    std::to_string(depth),
                    harness::Table::Num(result.throughput),
                    harness::Table::Num(result.abort_rate_pct),
                    harness::Table::Num(result.messages_per_txn),
                    harness::Table::Num(result.propagation_ms),
                    result.all_serializable ? "yes" : "NO"});
  }
  return 0;
}
