// Batching sweep (docs/PERFORMANCE.md §6): transport frame coalescing,
// ack piggybacking and WAL group commit across the three lazy tree
// protocols on the default Table-1 workload.
//
// The baseline arm routes traffic through the same reliable-transport
// layer with every batching knob off (`force_transport`), so the
// comparison isolates batching itself rather than transport overhead.
// Headline columns, all normalized per committed transaction:
//
//   frames/txn     first-transmission data+batch frames on the wire
//   acks/txn       standalone ChannelAck frames (piggybacked ones ride
//                  data frames for free)
//   syncs/txn      WAL sync boundaries (the fsync stand-in) across sites
//
// Each batched arm runs with piggybacking and group commit on; the
// window is the swept dial. Serializability and convergence are checked
// on every run — batching buys nothing if it breaks the protocol.

#include <string>

#include "bench/bench_common.h"

namespace {

using namespace lazyrep;

struct ArmResult {
  double tps = 0;
  double frames_per_txn = 0;
  double acks_per_txn = 0;
  double syncs_per_txn = 0;
  double batch_frames = 0;
  int64_t committed = 0;
  int64_t aborted = 0;
  bool all_serializable = true;
  bool all_converged = true;
  int runs = 0;
};

ArmResult RunArm(core::SystemConfig base, int seeds) {
  ArmResult arm;
  uint64_t frames = 0;
  uint64_t acks = 0;
  uint64_t batch_frames = 0;
  uint64_t syncs = 0;
  for (int i = 0; i < seeds; ++i) {
    core::SystemConfig config = base;
    config.seed = static_cast<uint64_t>(i) + 1;
    auto system = core::System::Create(config);
    LAZYREP_CHECK(system.ok()) << system.status().ToString();
    core::System& sys = **system;
    core::RunMetrics m = sys.Run();
    LAZYREP_CHECK(!m.timed_out) << "run saturated; shrink the workload";
    arm.tps += m.avg_site_throughput;
    arm.committed += m.committed;
    arm.aborted += m.aborted;
    arm.all_serializable = arm.all_serializable && m.serializable;
    arm.all_converged = arm.all_converged && m.converged;
    LAZYREP_CHECK(sys.transport() != nullptr);
    frames += sys.transport()->frames_sent();
    acks += sys.transport()->acks_standalone();
    batch_frames += sys.transport()->batch_frames_sent();
    for (SiteId s = 0; s < config.workload.num_sites; ++s) {
      if (sys.database(s).wal() != nullptr) {
        syncs += sys.database(s).wal()->sync_batches();
      }
    }
    ++arm.runs;
  }
  arm.tps /= seeds;
  const double committed = static_cast<double>(arm.committed);
  if (committed > 0) {
    arm.frames_per_txn = static_cast<double>(frames) / committed;
    arm.acks_per_txn = static_cast<double>(acks) / committed;
    arm.syncs_per_txn = static_cast<double>(syncs) / committed;
    arm.batch_frames = static_cast<double>(batch_frames) / committed;
  }
  return arm;
}

}  // namespace

int main(int argc, char** argv) {
  harness::BenchOptions options = harness::ParseBenchArgs(argc, argv);

  harness::Table table({"protocol", "window_ms", "tps", "frames/txn",
                        "acks/txn", "syncs/txn", "batch_frames/txn", "SR",
                        "converged"},
                       options.csv);
  bool printed_banner = false;
  for (core::Protocol protocol :
       {core::Protocol::kDagWt, core::Protocol::kDagT,
        core::Protocol::kBackEdge}) {
    core::SystemConfig base = harness::PaperConfig(protocol);
    harness::ApplyOptions(options, &base);
    base.enable_wal = true;  // syncs/txn needs a log in both arms.
    if (protocol != core::Protocol::kBackEdge) {
      base.workload.backedge_prob = 0.0;  // DAG protocols need a DAG.
    }
    if (!printed_banner) {
      bench::PrintBanner(
          "batching: frames, standalone acks and WAL syncs per committed "
          "transaction vs batch window (baseline = same transport, "
          "batching off)",
          base, options);
      table.PrintHeader();
      printed_banner = true;
    }
    for (double window_ms : {0.0, 1.0, 5.0, 20.0}) {
      core::SystemConfig config = base;
      if (window_ms == 0.0) {
        config.batching.force_transport = true;  // Baseline arm.
      } else {
        config.batching.window = Millis(window_ms);
        config.batching.piggyback_acks = true;
        config.batching.wal_group_commit = true;
      }
      ArmResult arm = RunArm(config, options.seeds);

      // AppendBenchJson consumes an AggregateResult; fill the fields this
      // bench actually measures and carry the batching counters as params.
      harness::AggregateResult result;
      result.throughput = arm.tps;
      result.committed = arm.committed;
      result.abort_rate_pct =
          arm.committed + arm.aborted > 0
              ? 100.0 * static_cast<double>(arm.aborted) /
                    static_cast<double>(arm.committed + arm.aborted)
              : 0.0;
      result.all_serializable = arm.all_serializable;
      result.all_converged = arm.all_converged;
      result.runs = arm.runs;
      harness::AppendBenchJson(
          options.json, "batching", core::ProtocolName(protocol),
          options.runtime,
          {{"window_ms", window_ms},
           {"frames_per_txn", arm.frames_per_txn},
           {"acks_per_txn", arm.acks_per_txn},
           {"wal_syncs_per_txn", arm.syncs_per_txn},
           {"batch_frames_per_txn", arm.batch_frames}},
          result);
      table.PrintRow({core::ProtocolName(protocol),
                      harness::Table::Num(window_ms, 0),
                      harness::Table::Num(arm.tps),
                      harness::Table::Num(arm.frames_per_txn),
                      harness::Table::Num(arm.acks_per_txn),
                      harness::Table::Num(arm.syncs_per_txn),
                      harness::Table::Num(arm.batch_frames),
                      arm.all_serializable ? "yes" : "NO",
                      arm.all_converged ? "yes" : "NO"});
    }
  }
  return 0;
}
